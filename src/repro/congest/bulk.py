"""Vectorized whole-round kernels for regular CONGEST primitives.

The active-set engine is O(touched) per round, but every touched node still
runs a Python callback; on 100k+-node workloads that callback cost dominates
wall time.  The *bulk round protocol* removes it for the regular primitives:
an algorithm declares ``bulk_capable`` and builds a kernel object here, and
``Network._run_bulk`` advances whole rounds with flat array ops over the CSR
directed-link ids — ``np.minimum.at``-style scatter for min-relaxation,
frontier masks for flood/BFS — instead of per-node dispatch.

The per-node path remains authoritative.  Kernels are pinned
**bit-identical** to it (rounds, messages sent/delivered, per-edge traffic,
max link backlog, final node state) by ``tests/test_bulk_kernels.py``; every
modelling decision below exists to reproduce an engine behaviour exactly:

* **Express kernels** (:class:`FloodMaxKernel`, :class:`BFSKernel`): the
  engine's express lane delivers every send in the next round, so one
  pending frontier per round suffices.  Candidate ranking is a packed-key
  ``np.minimum.at``/``np.maximum.at`` scatter over the compacted receiver
  set; the uniform-wave argument (all candidates of round ``r`` carry
  distance ``r``) makes the lexicographic ``(dist, root, sender)`` minimum
  a single integer minimum.
* **Ring kernels** (:class:`FleetKernel`, :class:`PartAggregationKernel`):
  unit-bandwidth ring queues are modelled by one ``avail`` cursor per
  directed link (the next free delivery round) — appending ``k`` messages
  at round ``r`` books delivery rounds ``max(avail, r+1) .. +k`` and bumps
  the cursor, which reproduces FIFO metering exactly.  Activation stamps
  (:class:`_LinkScheduler`) reproduce the engine's active-list order, which
  is what fixes per-receiver inbox order, and the per-round send stream is
  ordered by the engine's ``(node, band, sub)`` dispatch order before
  scheduling.

Fallback rules (enforced by ``Network._try_bulk``): adversarial runs, retry
(ack/retransmit) configurations, composed pipelines and dirty queues all
take the per-node path; the first two warn once per network with
:class:`BulkFallbackWarning` so silent de-optimization is observable.

Lint: every kernel declares its mutable state arrays in ``bulk_state``; the
``repro lint`` rule RPR013 flags ``bulk_round`` implementations assigning
``self.<attr>`` outside that tuple.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .message import Message

I64 = np.int64
#: Internal "unreached" distance sentinel (labels are exported as the
#: primitives' own sentinels / missing keys at finish time).
_HUGE = np.iinfo(np.int64).max
UNREACHED = -1
_MISSING = object()
#: Packed ``((dist + 1) * n + root) * n + sender`` keys must fit in int64.
_PACKED_NODE_LIMIT = 2_000_000


class BulkFallbackWarning(RuntimeWarning):
    """A bulk-capable algorithm fell back to the per-node path.

    Emitted once per network and reason (``"retry"``, ``"adversary"``) so a
    de-optimized run is observable without spamming sweeps that fall back
    thousands of times on purpose.
    """


def _ranks(counts: np.ndarray) -> np.ndarray:
    """Within-group rank ``0..count-1`` for groups of the given sizes."""
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=I64)
    ends = np.cumsum(counts)
    return np.arange(total, dtype=I64) - np.repeat(ends - counts, counts)


def _flat_slices(starts: np.ndarray, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat positions of each node's CSR slice, concatenated in node order.

    Returns ``(positions, counts)`` where ``positions`` indexes the flat
    ``targets``/``links`` arrays and ``counts[i]`` is node ``i``'s slice
    length — the vectorized equivalent of per-node ``starts[v]:starts[v+1]``
    slicing.
    """
    counts = starts[nodes + 1] - starts[nodes]
    return np.repeat(starts[nodes], counts) + _ranks(counts), counts


def _rankable(value) -> bool:
    """Whether ``value`` is safe to aggregate by sorted-rank comparison.

    Ranked folding replaces pairwise ``min``/``max`` with an integer-rank
    minimum, which is only sound for totally ordered values: plain numbers,
    strings, bytes, and tuples thereof.  Partial orders (sets) and NaN are
    excluded — their pairwise fold is order-dependent.
    """
    if isinstance(value, float):
        return value == value
    if isinstance(value, (bool, int, str, bytes)):
        return True
    if isinstance(value, tuple):
        return all(_rankable(item) for item in value)
    return False


class _LinkScheduler:
    """Event-time model of the engine's unit-bandwidth ring queues.

    Per directed link, ``avail`` is the next free delivery round: appending
    ``k`` messages during round ``r`` books delivery rounds
    ``base .. base + k - 1`` with ``base = max(avail, r + 1)`` and advances
    ``avail`` to ``base + k`` — exactly one delivery per link per round, FIFO.

    ``act`` reproduces the engine's active-list order: a link whose queue is
    empty at append time (``avail <= r + 1``) is (re)activated and receives a
    fresh globally increasing stamp, assigned in the order of each link's
    first send within the round's send stream.  Sorting a round's deliveries
    by ``act`` therefore reproduces per-receiver inbox order.

    ``linkmax`` mirrors the engine's send-time backlog recording: the
    backlog after the group's last append is ``base + k - 1 - r``; values
    below 2 are filtered at read time (the engine never records backlog 1).
    ``recorded_max`` folds only values from rounds the run's metric can
    observe (sends at ``rnd == max_rounds`` are recorded in ``linkmax`` for
    follow-up ``reset=False`` runs but never read by this run's deliveries).
    """

    __slots__ = ("avail", "act", "seq", "linkmax", "recorded_max")

    def __init__(self, num_links: int) -> None:
        self.avail = np.zeros(num_links, dtype=I64)
        self.act = np.zeros(num_links, dtype=I64)
        self.seq = 0
        self.linkmax = np.zeros(num_links, dtype=I64)
        self.recorded_max = 0

    def schedule(self, rnd: int, links: np.ndarray, record: bool) -> tuple[np.ndarray, np.ndarray]:
        """Book delivery rounds for sends made during round ``rnd``.

        ``links`` is the round's full send stream in engine dispatch order.
        Returns ``(delivery_rounds, activation_stamps)`` parallel to it.
        """
        nsend = len(links)
        order = np.argsort(links, kind="stable")
        slinks = links[order]
        firsts = np.flatnonzero(np.r_[True, slinks[1:] != slinks[:-1]])
        glinks = slinks[firsts]
        counts = np.diff(np.append(firsts, nsend))
        prev_avail = self.avail[glinks]
        base = np.maximum(prev_avail, rnd + 1)
        newly = np.flatnonzero(prev_avail <= rnd + 1)
        if len(newly):
            # Stamp empty->nonempty transitions in the order of each link's
            # first send in the stream (engine active-list append order).
            first_orig = order[firsts[newly]]
            na_order = newly[np.argsort(first_orig, kind="stable")]
            self.act[glinks[na_order]] = self.seq + np.arange(len(na_order), dtype=I64)
            self.seq += len(na_order)
        sdeliv = np.repeat(base, counts) + _ranks(counts)
        self.avail[glinks] = base + counts
        if record:
            gmax = base + counts - 1 - rnd
            np.maximum(self.linkmax[glinks], gmax, out=gmax)
            self.linkmax[glinks] = gmax
            top = int(gmax.max())
            if top > self.recorded_max:
                self.recorded_max = top
        else:
            # Sends at the cutoff round are still recorded for follow-up
            # reset=False runs (the engine's link_max list keeps them), but
            # this run's metric never reads them.
            gmax = base + counts - 1 - rnd
            np.maximum(self.linkmax[glinks], gmax, out=gmax)
            self.linkmax[glinks] = gmax
        deliv = np.empty(nsend, dtype=I64)
        deliv[order] = sdeliv
        return deliv, self.act[links]


def _bucket_push(buckets: dict, deliv: np.ndarray, cols: tuple) -> None:
    """Split column arrays by delivery round into the round-bucket dict."""
    order = np.argsort(deliv, kind="stable")
    sd = deliv[order]
    firsts = np.flatnonzero(np.r_[True, sd[1:] != sd[:-1]])
    bounds = np.append(firsts, len(sd))
    for i, f in enumerate(firsts):
        rnd = int(sd[f])
        sel = order[f:bounds[i + 1]]
        chunk = tuple(c[sel] for c in cols)
        prev = buckets.get(rnd)
        if prev is None:
            buckets[rnd] = chunk
        else:
            buckets[rnd] = tuple(
                np.concatenate((a, b)) for a, b in zip(prev, chunk)
            )


def _halt_all(network) -> None:
    """Leave every node halted, as a quiesced per-node run would."""
    for ctx in network._node_list:
        ctx.halted = True
    network._awake.clear()


def _finish_metrics(kernel, network, metrics) -> None:
    """Fill the shared RunMetrics fields every kernel accounts identically."""
    metrics.messages_sent = kernel.sent
    metrics.messages_delivered = kernel.delivered
    metrics._edge_counts = kernel.edge_counts.tolist()
    metrics._edge_list = network._csr.edge_list


# ----------------------------------------------------------------------
# express kernels (single-channel algorithms: every send lands next round)
# ----------------------------------------------------------------------
class FloodMaxKernel:
    """Bulk twin of :class:`~repro.congest.primitives.leader.FloodMax`.

    Only the unrestricted configuration (``allowed_adjacency is None``) is
    bulk-eligible, so every node participates and announces at round 0; the
    per-round step is a compacted ``np.maximum.at`` scatter over this
    round's receivers followed by a frontier expansion of the strict
    improvements.
    """

    bulk_state = ("leader", "pending", "sent", "delivered", "edge_counts")

    def __init__(self, algorithm, network) -> None:
        csr = network._csr
        arrays = csr.adjacency_arrays()
        self.n = csr.num_vertices
        self.indptr = np.asarray(csr.indptr, dtype=I64)
        self.indices = arrays.indices
        self.adj_edges = arrays.edge_ids
        self.key_leader = algorithm._key_leader
        self.tag = algorithm._tag_max
        self.algorithm_id = algorithm.algorithm_id
        self.leader = np.arange(self.n, dtype=I64)
        self.pending: Optional[tuple] = None
        self.sent = 0
        self.delivered = 0
        self.edge_counts = np.zeros(csr.num_edges, dtype=I64)

    @classmethod
    def build(cls, algorithm, network) -> Optional["FloodMaxKernel"]:
        return cls(algorithm, network)

    def _expand(self, nodes: np.ndarray) -> None:
        """Announce ``leader[nodes]`` to every neighbour (next-round pending)."""
        flat, counts = _flat_slices(self.indptr, nodes)
        if not len(flat):
            self.pending = None
            return
        targets = self.indices[flat]
        edges = self.adj_edges[flat]
        values = np.repeat(self.leader[nodes], counts)
        senders = np.repeat(nodes, counts)
        self.sent += len(targets)
        self.pending = (targets, edges, values, senders)

    def start(self, max_rounds: int) -> None:
        # initialize: every node sets leader = own id and announces it.
        self._expand(np.arange(self.n, dtype=I64))

    def next_round(self, after: int) -> Optional[int]:
        return after + 1 if self.pending is not None else None

    def bulk_round(self, rnd: int) -> None:
        targets, edges, values, _ = self.pending
        self.delivered += len(targets)
        self.edge_counts += np.bincount(edges, minlength=len(self.edge_counts))
        uniq, inv = np.unique(targets, return_inverse=True)
        best = np.full(len(uniq), -1, dtype=I64)
        np.maximum.at(best, inv, values)
        improved = best > self.leader[uniq]
        frontier = uniq[improved]
        if len(frontier):
            self.leader[frontier] = best[improved]
            self._expand(frontier)
        else:
            self.pending = None

    def awake_at_cutoff(self, rnd: int) -> int:
        return 0

    def finish(self, network, metrics, terminated: bool, final_round: int) -> None:
        _finish_metrics(self, network, metrics)
        metrics.max_link_backlog = 1 if self.delivered else 0
        if self.pending is not None:
            targets, _, values, senders = self.pending
            tag, aid = self.tag, self.algorithm_id
            _spill_express(network, (
                (t, Message(s, -1, tag, v, aid))
                for t, v, s in zip(
                    targets.tolist(), values.tolist(), senders.tolist()
                )
            ))
            self.pending = None
        key = self.key_leader
        leaders = self.leader.tolist()
        for ctx, lead in zip(network._node_list, leaders):
            ctx.state[key] = lead
        _halt_all(network)


class BFSKernel:
    """Bulk twin of :class:`~repro.congest.primitives.bfs.DistributedBFS`.

    Eligible without retry mode and without a dict-of-sets adjacency
    restriction (a CSR ``allowed_links`` mask or the full adjacency both
    vectorize).  The uniform-wave property of an express-lane BFS — every
    candidate delivered at round ``r`` offers distance exactly ``r`` — turns
    the engine's lexicographic ``(dist, root, sender)`` minimum into a
    ``np.minimum.at`` over packed ``root * n + sender`` keys on the
    still-improvable receivers.
    """

    bulk_state = ("dist", "parent", "root", "pending", "sent", "delivered",
                  "edge_counts")

    def __init__(self, algorithm, network) -> None:
        csr = network._csr
        n = csr.num_vertices
        self.n = n
        mask = algorithm.allowed_links
        if mask is not None:
            self.starts, self.targets, self.links = mask.arrays()
        else:
            arrays = csr.adjacency_arrays()
            self.starts = np.asarray(csr.indptr, dtype=I64)
            self.targets = arrays.indices
            self.links = arrays.adj_link_ids
        self.sources = np.asarray(sorted(algorithm.sources), dtype=I64)
        md = algorithm.max_depth
        self.max_depth = _HUGE if md is None else md
        self.key_dist = algorithm._key_dist
        self.key_parent = algorithm._key_parent
        self.key_root = algorithm._key_root
        self.tag = algorithm._tag_explore
        self.algorithm_id = algorithm.algorithm_id
        self.dist = np.full(n, _HUGE, dtype=I64)
        self.parent = np.full(n, -1, dtype=I64)
        self.root = np.full(n, -1, dtype=I64)
        # reset=False composition: DistributedBFS reads prior state under
        # its own keys, so preload any labels an earlier run left behind.
        node_list = network._node_list
        if any(ctx.state for ctx in node_list):
            kd, kp, kr = self.key_dist, self.key_parent, self.key_root
            for v, ctx in enumerate(node_list):
                d = ctx.state.get(kd)
                if d is not None:
                    self.dist[v] = d
                    self.parent[v] = ctx.state[kp]
                    self.root[v] = ctx.state[kr]
        self.pending: Optional[tuple] = None
        self.sent = 0
        self.delivered = 0
        self.edge_counts = np.zeros(csr.num_edges, dtype=I64)

    @classmethod
    def build(cls, algorithm, network) -> Optional["BFSKernel"]:
        if network._csr.num_vertices > _PACKED_NODE_LIMIT:
            return None
        return cls(algorithm, network)

    def _expand(self, nodes: np.ndarray) -> None:
        """Announce from ``nodes`` (packed next-round candidate keys)."""
        flat, counts = _flat_slices(self.starts, nodes)
        if not len(flat):
            self.pending = None
            return
        targets = self.targets[flat]
        edges = self.links[flat] >> 1
        packed = np.repeat(self.root[nodes] * self.n + nodes, counts)
        self.sent += len(targets)
        self.pending = (targets, edges, packed)

    def start(self, max_rounds: int) -> None:
        src = self.sources
        self.dist[src] = 0
        self.parent[src] = src
        self.root[src] = src
        if 0 < self.max_depth:
            self._expand(src)

    def next_round(self, after: int) -> Optional[int]:
        return after + 1 if self.pending is not None else None

    def bulk_round(self, rnd: int) -> None:
        targets, edges, packed = self.pending
        self.delivered += len(targets)
        self.edge_counts += np.bincount(edges, minlength=len(self.edge_counts))
        uniq, inv = np.unique(targets, return_inverse=True)
        best = np.full(len(uniq), _HUGE, dtype=I64)
        np.minimum.at(best, inv, packed)
        improved = rnd < self.dist[uniq]
        frontier = uniq[improved]
        if len(frontier):
            bpk = best[improved]
            n = self.n
            self.dist[frontier] = rnd
            self.root[frontier] = bpk // n
            self.parent[frontier] = bpk % n
        if len(frontier) and rnd < self.max_depth:
            self._expand(frontier)
        else:
            self.pending = None

    def awake_at_cutoff(self, rnd: int) -> int:
        return 0

    def finish(self, network, metrics, terminated: bool, final_round: int) -> None:
        _finish_metrics(self, network, metrics)
        metrics.max_link_backlog = 1 if self.delivered else 0
        if self.pending is not None:
            targets, _, packed = self.pending
            n = self.n
            senders = packed % n
            roots = packed // n
            dists = self.dist[senders]
            tag, aid = self.tag, self.algorithm_id
            _spill_express(network, (
                (t, Message(s, -1, tag, (d, r), aid))
                for t, s, d, r in zip(
                    targets.tolist(), senders.tolist(),
                    dists.tolist(), roots.tolist(),
                )
            ))
            self.pending = None
        reached = np.flatnonzero(self.dist < _HUGE)
        kd, kp, kr = self.key_dist, self.key_parent, self.key_root
        node_list = network._node_list
        dl = self.dist[reached].tolist()
        pl = self.parent[reached].tolist()
        rl = self.root[reached].tolist()
        for v, d, p, r in zip(reached.tolist(), dl, pl, rl):
            state = node_list[v].state
            state[kd] = d
            state[kp] = p
            state[kr] = r
        _halt_all(network)


# ----------------------------------------------------------------------
# ring kernels (multi-channel algorithms: metered unit-bandwidth queues)
# ----------------------------------------------------------------------
def _ring_backlog(kernel) -> int:
    """The run's ``max_link_backlog`` under the ring-queue model.

    The engine folds the live ``link_max`` list value of every delivered
    link (inherited values from earlier ``reset=False`` runs included) and
    floors at 1 once anything delivered; every kernel-recorded value from a
    round the run observes is folded by that link's next delivery, so the
    scalar maxima are exact.
    """
    if not kernel.delivered:
        return 0
    return max(1, kernel.sched.recorded_max, kernel.seen_linkmax)


def _writeback_linkmax(kernel, network) -> None:
    """Max-merge recorded backlogs into the network's shared link_max list.

    In place — the list object is aliased by every NodeContext.  Values
    below 2 are skipped: they cannot change any later run's folded metric
    (any delivery floors it at 1).
    """
    lm = network._link_max_backlog
    km = kernel.sched.linkmax
    hot = np.flatnonzero(km >= 2)
    for link, val in zip(hot.tolist(), km[hot].tolist()):
        if val > lm[link]:
            lm[link] = val


def _prune_pending(pending: dict, final_round: int) -> None:
    """Drop start entries the run executed, as per-node popping would."""
    for v in list(pending):
        keep = [entry for entry in pending[v] if entry[0] > final_round]
        if keep:
            pending[v] = keep
        else:
            del pending[v]


# ----------------------------------------------------------------------
# cutoff spill: a round-limited per-node run leaves its undelivered
# traffic in the network queues, where a ``reset=False`` follow-up run
# delivers and counts it.  Kernels reconstruct that state exactly.
# ----------------------------------------------------------------------
def _spill_express(network, stream) -> None:
    """Materialize undelivered express traffic into ``network._pending``.

    ``stream`` yields ``(target, message)`` in send order; receiver pools
    and the first-touch ``_pending_receivers`` order match what
    ``NodeContext.multicast`` would have built during the cutoff round.
    """
    pending = network._pending
    receivers = network._pending_receivers
    for target, msg in stream:
        pool = pending[target]
        if not pool:
            receivers.append(target)
        pool.append(msg)


def _spill_ring(network, entries) -> None:
    """Materialize undelivered ring traffic into ``network._queues``.

    ``entries`` is a list of ``(act_stamp, link, message)`` with per-link
    FIFO order (iterate delivery rounds ascending: unit bandwidth means at
    most one delivery per link per round).  The rebuilt active list is
    sorted by activation stamp, which is the engine's activation-time
    insertion order.
    """
    queues = network._queues
    is_active = network._is_active
    first_act: dict[int, int] = {}
    for act, link, msg in entries:
        queues[link].append(msg)
        if link not in first_act:
            first_act[link] = act
    for link in sorted(first_act, key=first_act.get):
        if not is_active[link]:
            is_active[link] = 1
            network._active.append(link)


class FleetKernel:
    """Bulk twin of :class:`~repro.congest.primitives.concurrent_bfs.
    ConcurrentMaskedBFS` (non-retry fleets).

    Participants of every instance get a *slot* (``slot_keys`` is
    instance-major, node-sorted, so ``np.searchsorted`` resolves
    ``(instance, node)`` pairs); labels, announce slices and the relaxation
    all operate on flat per-slot arrays.  Per round, delivered candidates
    are ranked by the packed ``((dist + 1) * n + root) * n + sender`` key —
    a single ``np.minimum.at`` reproduces the per-node lexicographic
    ``(dist, root, sender)`` minimum — and improvements re-announce over
    their mask slices, minus the same-round senders the parent-echo
    suppression provably cannot improve.
    """

    bulk_state = ("dist", "parent", "root", "buckets", "start_events",
                  "sent", "delivered", "edge_counts", "seen_linkmax",
                  "max_rounds")

    def __init__(self, algorithm, network) -> None:
        self.alg = algorithm
        csr = network._csr
        n = csr.num_vertices
        self.n = n
        num = len(algorithm.sources)
        self.max_depth = algorithm.max_depth
        self.suppress = algorithm.suppress_parent_echo
        arrays = [mask.arrays() for mask in algorithm.masks]
        parts = [
            np.unique(np.append(arr[1], algorithm.sources[idx])).astype(I64, copy=False)
            for idx, arr in enumerate(arrays)
        ]
        counts_per = np.asarray([len(p) for p in parts], dtype=I64)
        self.slot_v = np.concatenate(parts) if num else np.empty(0, dtype=I64)
        self.slot_i = np.repeat(np.arange(num, dtype=I64), counts_per)
        self.slot_keys = self.slot_i * n + self.slot_v
        num_slots = len(self.slot_keys)
        seg_t, seg_l, seg_c = [], [], []
        for idx, (mstarts, mtargets, mlinks) in enumerate(arrays):
            flat, cnts = _flat_slices(mstarts, parts[idx])
            seg_t.append(mtargets[flat])
            seg_l.append(mlinks[flat])
            seg_c.append(cnts)
        self.ann_targets = np.concatenate(seg_t) if num else np.empty(0, dtype=I64)
        self.ann_links = np.concatenate(seg_l) if num else np.empty(0, dtype=I64)
        cnts_all = np.concatenate(seg_c) if num else np.empty(0, dtype=I64)
        self.ann_starts = np.concatenate(([0], np.cumsum(cnts_all))).astype(I64)
        ann_insts = np.repeat(self.slot_i, cnts_all)
        self.ann_tslot = np.searchsorted(
            self.slot_keys, ann_insts * n + self.ann_targets
        )
        # Labels, preloaded: a reused fleet object keeps its labels between
        # runs and the per-node relaxation would see them.
        self.dist = np.full(num_slots, _HUGE, dtype=I64)
        self.parent = np.full(num_slots, UNREACHED, dtype=I64)
        self.root = np.full(num_slots, UNREACHED, dtype=I64)
        offsets = np.concatenate(([0], np.cumsum(counts_per))).astype(I64)
        for idx in range(num):
            base = int(offsets[idx])
            p = parts[idx]
            cont = algorithm.dist[idx]
            if isinstance(cont, list):
                seg = np.asarray(cont, dtype=I64)[p]
                hit = np.flatnonzero(seg != UNREACHED)
                if len(hit):
                    self.dist[base + hit] = seg[hit]
                    pseg = np.asarray(algorithm.parent[idx], dtype=I64)
                    rseg = np.asarray(algorithm.root[idx], dtype=I64)
                    self.parent[base + hit] = pseg[p[hit]]
                    self.root[base + hit] = rseg[p[hit]]
            elif cont:
                par = algorithm.parent[idx]
                rt = algorithm.root[idx]
                size = len(p)
                for v, d in cont.items():
                    j = int(np.searchsorted(p, v))
                    if j < size and p[j] == v and d != UNREACHED:
                        self.dist[base + j] = d
                        self.parent[base + j] = par[v]
                        self.root[base + j] = rt[v]
        # Start schedule from the algorithm's remaining pending entries
        # (delays <= 0 fire during initialize, i.e. round 0); ticking
        # sources mirror the per-node __cmb_round counter at finish.
        events: dict[int, list] = {}
        tick_last: dict[int, int] = {}
        for v, lst in algorithm._pending.items():
            last = 0
            for delay, idx in lst:
                events.setdefault(max(delay, 0), []).append((v, delay, idx))
                if delay > last:
                    last = delay
            if last > 0:
                tick_last[v] = last
        self.start_events = {rnd: sorted(ev) for rnd, ev in events.items()}
        self.tick_last = tick_last
        self.sched = _LinkScheduler(2 * csr.num_edges)
        self.inherited = np.asarray(network._link_max_backlog, dtype=I64)
        self.buckets: dict[int, tuple] = {}
        self.sent = 0
        self.delivered = 0
        self.edge_counts = np.zeros(csr.num_edges, dtype=I64)
        self.seen_linkmax = 0
        self.max_rounds = 0

    @classmethod
    def build(cls, algorithm, network) -> Optional["FleetKernel"]:
        if network.bandwidth != 1 or network.strict_bandwidth:
            return None
        if network._csr.num_vertices > _PACKED_NODE_LIMIT:
            return None
        return cls(algorithm, network)

    def start(self, max_rounds: int) -> None:
        self.max_rounds = max_rounds
        self._do_round(0, self.start_events.pop(0, None), None)

    def next_round(self, after: int) -> Optional[int]:
        if self.buckets:
            # Every nonempty link queue delivers next round, so the earliest
            # pending delivery is always exactly one round away.
            return after + 1
        if self.start_events:
            return min(self.start_events)
        return None

    def bulk_round(self, rnd: int) -> None:
        self._do_round(
            rnd, self.start_events.pop(rnd, None), self.buckets.pop(rnd, None)
        )

    def _do_round(self, rnd: int, starts, chunk) -> None:
        n = self.n
        stream0 = stream1 = None
        if starts:
            vs = np.asarray([e[0] for e in starts], dtype=I64)
            idxs = np.asarray([e[2] for e in starts], dtype=I64)
            slots = np.searchsorted(self.slot_keys, idxs * n + vs)
            self.dist[slots] = 0
            self.parent[slots] = vs
            self.root[slots] = vs
            if 0 < self.max_depth:
                flat, cnts = _flat_slices(self.ann_starts, slots)
                if len(flat):
                    nodes = np.repeat(vs, cnts)
                    stream0 = (
                        nodes,
                        np.repeat(np.arange(len(slots), dtype=I64), cnts),
                        self.ann_links[flat],
                        self.ann_targets[flat],
                        self.ann_tslot[flat],
                        nodes,
                        np.zeros(len(flat), dtype=I64),
                        np.repeat(vs, cnts),
                    )
        if chunk is not None:
            acts, links, targets, tslots, senders, dists, roots = chunk
            self.delivered += len(links)
            self.edge_counts += np.bincount(
                links >> 1, minlength=len(self.edge_counts)
            )
            seen = int(self.inherited[links].max())
            if seen > self.seen_linkmax:
                self.seen_linkmax = seen
            order = np.lexsort((acts, targets))
            slots_s = tslots[order]
            senders_s = senders[order]
            dists_s = dists[order]
            roots_s = roots[order]
            uq, first_pos, inv = np.unique(
                slots_s, return_index=True, return_inverse=True
            )
            packed = ((dists_s + 1) * n + roots_s) * n + senders_s
            best = np.full(len(uq), _HUGE, dtype=I64)
            np.minimum.at(best, inv, packed)
            nd = best // (n * n)
            rem = best - nd * n * n
            improved = nd < self.dist[uq]
            win = np.flatnonzero(improved)
            if len(win):
                islots = uq[win]
                self.dist[islots] = nd[win]
                self.root[islots] = rem[win] // n
                self.parent[islots] = rem[win] % n
            announcing = np.flatnonzero(improved & (nd < self.max_depth))
            if len(announcing):
                # Per-node announce order: instances in first-message order.
                announcing = announcing[
                    np.argsort(first_pos[announcing], kind="stable")
                ]
                a_slots = uq[announcing]
                flat, cnts = _flat_slices(self.ann_starts, a_slots)
                e_nodes = np.repeat(self.slot_v[a_slots], cnts)
                e_sub = np.repeat(np.arange(len(a_slots), dtype=I64), cnts)
                e_links = self.ann_links[flat]
                e_targets = self.ann_targets[flat]
                e_tslots = self.ann_tslot[flat]
                e_d = np.repeat(self.dist[a_slots], cnts)
                e_root = np.repeat(self.root[a_slots], cnts)
                if self.suppress:
                    # Same-round senders whose announced distance is within
                    # one of the new label cannot be improved by the echo.
                    supp = improved[inv] & (dists_s <= self.dist[slots_s] + 1)
                    if supp.any():
                        supp_keys = np.unique(
                            inv[supp] * n + senders_s[supp]
                        )
                        e_uqpos = np.repeat(announcing, cnts)
                        keep = ~np.isin(e_uqpos * n + e_targets, supp_keys)
                        e_nodes = e_nodes[keep]
                        e_sub = e_sub[keep]
                        e_links = e_links[keep]
                        e_targets = e_targets[keep]
                        e_tslots = e_tslots[keep]
                        e_d = e_d[keep]
                        e_root = e_root[keep]
                if len(e_links):
                    stream1 = (e_nodes, e_sub, e_links, e_targets, e_tslots,
                               e_nodes, e_d, e_root)
        if stream0 is None and stream1 is None:
            return
        if stream1 is None:
            cols = stream0
            bands = np.zeros(len(cols[0]), dtype=I64)
        elif stream0 is None:
            cols = stream1
            bands = np.zeros(len(cols[0]), dtype=I64)
        else:
            cols = tuple(np.concatenate(pair) for pair in zip(stream0, stream1))
            bands = np.concatenate((
                np.zeros(len(stream0[0]), dtype=I64),
                np.ones(len(stream1[0]), dtype=I64),
            ))
        nodes, subs, links, targets, tslots, senders, dists, roots = cols
        order = np.lexsort((subs, bands, nodes))
        links_o = links[order]
        deliv, acts = self.sched.schedule(rnd, links_o, rnd < self.max_rounds)
        self.sent += len(links_o)
        _bucket_push(self.buckets, deliv, (
            acts, links_o, targets[order], tslots[order], senders[order],
            dists[order], roots[order],
        ))

    def awake_at_cutoff(self, rnd: int) -> int:
        return sum(
            1 for lst in self.alg._pending.values()
            if lst and lst[-1][0] > rnd
        )

    def _spill(self, network) -> None:
        tags = self.alg.tags
        slot_i = self.slot_i
        entries = []
        for rnd in sorted(self.buckets):
            acts, links, targets, tslots, senders, dists, roots = \
                self.buckets[rnd]
            idxs = slot_i[tslots].tolist()
            for act, link, sender, d, r, idx in zip(
                acts.tolist(), links.tolist(), senders.tolist(),
                dists.tolist(), roots.tolist(), idxs,
            ):
                entries.append(
                    (act, link, Message(sender, -1, tags[idx], (d, r), idx))
                )
        self.buckets.clear()
        _spill_ring(network, entries)

    def finish(self, network, metrics, terminated: bool, final_round: int) -> None:
        alg = self.alg
        _finish_metrics(self, network, metrics)
        metrics.max_link_backlog = _ring_backlog(self)
        _writeback_linkmax(self, network)
        if self.buckets:
            self._spill(network)
        reached = np.flatnonzero(self.dist != _HUGE)
        vs = self.slot_v[reached].tolist()
        idxs = self.slot_i[reached].tolist()
        ds = self.dist[reached].tolist()
        ps = self.parent[reached].tolist()
        rs = self.root[reached].tolist()
        dist_c, par_c, root_c = alg.dist, alg.parent, alg.root
        for i, v, d, p, r in zip(idxs, vs, ds, ps, rs):
            dist_c[i][v] = d
            par_c[i][v] = p
            root_c[i][v] = r
        _halt_all(network)
        node_list = network._node_list
        for v, last in self.tick_last.items():
            node_list[v].state["__cmb_round"] = min(last, final_round)
        pending = alg._pending
        _prune_pending(pending, final_round)
        for v in pending:
            # Sources still waiting on a start keep ticking past a cutoff.
            node_list[v].halted = False
            network._awake.add(v)


_K_ANN, _K_UP, _K_DOWN = 0, 1, 2


class PartAggregationKernel:
    """Bulk twin of :class:`~repro.congest.primitives.aggregation.
    PartAggregation` (non-retry configurations).

    The announce volume (every participant multicasts its parent pointer
    over its full mask slice) is vectorized; the sparse phases —
    child registration, convergecast folds, broadcast downs — run as
    Python loops in exact per-node processing order, which is O(tree
    edges) per round instead of O(mask edges).  Hybrid is deliberate:
    fold order and ``op`` are arbitrary Python, so the value plane cannot
    be an int64 array, but it is also asymptotically tiny next to the
    announce plane.

    The kernel writes back ``results`` / ``delivered`` (the documented
    accessors) and prunes ``_pending`` exactly like the per-node run;
    the internal ``_heard`` / ``_child_*`` / ``_done`` bookkeeping dicts
    are *not* mirrored back (nothing documented reads them after a run).
    """

    bulk_state = ("heard", "done", "children", "child_vals", "buckets",
                  "start_events", "sent", "delivered", "edge_counts",
                  "seen_linkmax", "max_rounds", "last_executed")

    def __init__(self, algorithm, network) -> None:
        self.alg = algorithm
        csr = network._csr
        n = csr.num_vertices
        self.n = n
        num = len(algorithm.masks)
        self.broadcast = algorithm.broadcast_result
        self.op = algorithm.op
        self.identity = algorithm.identity
        arrays = [mask.arrays() for mask in algorithm.masks]
        # Participants of every instance at once: mask targets and value
        # holders pack into ``idx * n + v`` keys, and one global unique is
        # the (sorted) slot key array — no per-instance unique/union.
        mt_cnt = np.asarray([len(a[1]) for a in arrays], dtype=I64)
        if num and n:
            mt_all = np.concatenate([a[1] for a in arrays])
            mt_keys = mt_all + np.repeat(
                np.arange(num, dtype=I64) * n, mt_cnt
            )
            vkeys = np.asarray(
                [
                    idx * n + v
                    for idx, vals in enumerate(algorithm.values)
                    for v in vals
                ],
                dtype=I64,
            )
            self.slot_keys = np.unique(np.concatenate((mt_keys, vkeys)))
            self.slot_i, self.slot_v = np.divmod(self.slot_keys, n)
            counts_per = np.bincount(self.slot_i, minlength=num)
        else:
            self.slot_keys = np.empty(0, dtype=I64)
            self.slot_i = np.empty(0, dtype=I64)
            self.slot_v = np.empty(0, dtype=I64)
            counts_per = np.zeros(num, dtype=I64)
        num_slots = len(self.slot_keys)
        offsets = np.concatenate(([0], np.cumsum(counts_per))).astype(I64)
        # Announce rows: per instance only the two boundary gathers run;
        # the flat positions resolve globally against the concatenated
        # target/link arrays.
        moff = np.concatenate(([0], np.cumsum(mt_cnt))).astype(I64)
        seg_s, seg_e = [], []
        for idx in range(num):
            mstarts = arrays[idx][0]
            p = self.slot_v[offsets[idx]:offsets[idx + 1]]
            seg_s.append(mstarts[p] + moff[idx])
            seg_e.append(mstarts[p + 1] + moff[idx])
        if num_slots:
            lo = np.concatenate(seg_s)
            cnts_all = np.concatenate(seg_e) - lo
            flat_all = np.repeat(lo, cnts_all) + _ranks(cnts_all)
            cat_l = np.concatenate([a[2] for a in arrays])
            self.ann_targets = mt_all[flat_all]
            self.ann_links = cat_l[flat_all]
        else:
            cnts_all = np.empty(0, dtype=I64)
            self.ann_targets = np.empty(0, dtype=I64)
            self.ann_links = np.empty(0, dtype=I64)
        self.ann_starts = np.concatenate(([0], np.cumsum(cnts_all))).astype(I64)
        ann_insts = np.repeat(self.slot_i, cnts_all)
        self.ann_tslot = np.searchsorted(
            self.slot_keys, ann_insts * n + self.ann_targets
        )
        self.expected = np.diff(self.ann_starts)
        # Python-list mirrors for the residual object-plane loops (indexing
        # a numpy scalar per row costs ~10x a list element).
        self.slot_v_list = self.slot_v.tolist()
        self.slot_i_list = self.slot_i.tolist()
        # Parent pointers: invalid trees (parent neither self, UNREACHED,
        # a fellow participant, nor graph-adjacent) abort the build — the
        # caller falls back to the per-node path.  All vectorized: per
        # instance, parent values come from one fancy index (list
        # containers) or one fromiter (dict containers); adjacency and
        # participant membership resolve with two global searchsorteds
        # (``rows * n + indices`` is globally ascending because CSR
        # adjacency rows are).
        self.parent_of = np.full(num_slots, UNREACHED, dtype=I64)
        self.up_link = np.full(num_slots, -1, dtype=I64)
        self.up_tslot = np.full(num_slots, -1, dtype=I64)
        self.valid = True
        for idx in range(num):
            lo, hi = offsets[idx], offsets[idx + 1]
            if lo == hi:
                continue
            p = self.slot_v[lo:hi]
            cont = algorithm.parents[idx]
            try:
                if isinstance(cont, list):
                    arr = np.asarray(cont, dtype=I64)
                    if arr.ndim != 1 or (len(arr) and int(p[-1]) >= len(arr)):
                        self.valid = False
                        return
                    vals = arr[p]
                elif isinstance(cont, dict):
                    # Sort the container once and resolve every participant
                    # with one searchsorted — no per-key Python lookups.
                    kv = np.fromiter(cont.keys(), dtype=I64, count=len(cont))
                    pv = np.fromiter(cont.values(), dtype=I64, count=len(cont))
                    order = np.argsort(kv)
                    kv = kv[order]
                    vals = np.full(len(p), UNREACHED, dtype=I64)
                    if len(kv):
                        j = np.searchsorted(kv, p)
                        jc = np.minimum(j, len(kv) - 1)
                        hit = kv[jc] == p
                        vals[hit] = pv[order][jc[hit]]
                    else:
                        hit = np.zeros(len(p), dtype=bool)
                    if not hit.all():
                        # Absent keys resolve through the container itself:
                        # a defaultdict (the sparse BFS parent map) yields
                        # its default — with the same key-inserting side
                        # effect the per-node path has — while a plain dict
                        # raises and aborts the build.
                        miss = p[~hit].tolist()
                        vals[~hit] = np.fromiter(
                            (cont[v] for v in miss), dtype=I64,
                            count=len(miss),
                        )
                else:
                    vals = np.fromiter(
                        (cont[v] for v in p.tolist()), dtype=I64, count=len(p)
                    )
            except (KeyError, IndexError, TypeError, ValueError):
                self.valid = False
                return
            self.parent_of[lo:hi] = vals
        up = np.flatnonzero(
            (self.parent_of != self.slot_v) & (self.parent_of != UNREACHED)
        )
        if len(up):
            adj = csr.adjacency_arrays()
            row_keys = adj.rows * n + adj.indices
            keys = self.slot_v[up] * n + self.parent_of[up]
            j = np.searchsorted(row_keys, keys)
            jc = np.minimum(j, max(len(row_keys) - 1, 0))
            if not len(row_keys) or not (row_keys[jc] == keys).all():
                self.valid = False
                return
            self.up_link[up] = adj.adj_link_ids[jc]
            pkeys = self.slot_i[up] * n + self.parent_of[up]
            j = np.searchsorted(self.slot_keys, pkeys)
            jc = np.minimum(j, num_slots - 1)
            if not (self.slot_keys[jc] == pkeys).all():
                self.valid = False
                return
            self.up_tslot[up] = jc
        # Bookkeeping preloaded from the algorithm object (fresh dicts on a
        # normal run, so the per-slot loop is skipped; faithful if a
        # partially-run object is resumed).  ``n_children``/``n_child_vals``
        # mirror the dict sizes so fire eligibility is one array test.
        self.heard = np.zeros(num_slots, dtype=I64)
        self.done = np.zeros(num_slots, dtype=bool)
        self.children: dict[int, list] = {}
        self.child_vals: dict[int, list] = {}
        self.n_children = np.zeros(num_slots, dtype=I64)
        self.n_child_vals = np.zeros(num_slots, dtype=I64)
        resumed = any(
            algorithm._heard[idx] or algorithm._done[idx]
            or algorithm._child_targets[idx] or algorithm._child_values[idx]
            for idx in range(num)
        )
        if resumed:
            for slot in range(num_slots):
                v = int(self.slot_v[slot])
                idx = int(self.slot_i[slot])
                h = algorithm._heard[idx].get(v)
                if h:
                    self.heard[slot] = h
                if v in algorithm._done[idx]:
                    self.done[slot] = True
                ct = algorithm._child_targets[idx].get(v)
                if ct:
                    cl = algorithm._child_links[idx][v]
                    kids = []
                    for t, link in zip(ct, cl):
                        ts = self._slot_of(idx, int(t))
                        if ts is None:
                            self.valid = False
                            return
                        kids.append((int(t), int(link), ts))
                    self.children[slot] = kids
                    self.n_children[slot] = len(kids)
                cvals = algorithm._child_values[idx].get(v)
                if cvals:
                    self.child_vals[slot] = list(cvals)
                    self.n_child_vals[slot] = len(cvals)
        # Value plane.  Named ``min``/``max`` over safely ordered values runs
        # ranked: every distinct value (and the identity) gets an integer
        # rank once, folds become vectorized rank minima, children live in
        # flat arrays, and UP/DOWN payloads travel as ranks in the integer
        # columns — no per-slot object loops.  Everything else (``sum``,
        # exotic value types, resumed per-node state) uses the object plane.
        self.ranked = False
        if not resumed and (self.op is min or self.op is max):
            try:
                pool = {self.identity}
                for vals in algorithm.values:
                    pool.update(vals.values())
                rankable = all(_rankable(value) for value in pool)
                table = sorted(pool) if rankable else None
            except TypeError:
                table = None
            if table is not None:
                self.ranked = True
                self.rank_table = table
                self.fold_at = (
                    np.minimum.at if self.op is min else np.maximum.at
                )
                rank_of = {value: r for r, value in enumerate(table)}
                self.acc_rank = np.full(
                    num_slots, rank_of[self.identity], dtype=I64
                )
                own_keys: list[int] = []
                own_ranks: list[int] = []
                for idx, vals in enumerate(algorithm.values):
                    base = idx * n
                    for v, value in vals.items():
                        own_keys.append(base + v)
                        own_ranks.append(rank_of[value])
                if own_keys:
                    pos = np.searchsorted(
                        self.slot_keys, np.asarray(own_keys, dtype=I64)
                    )
                    self.acc_rank[pos] = np.asarray(own_ranks, dtype=I64)
                # Children in registration order, capacity-bounded by the
                # announce rows (masks permit both directions, so a slot's
                # in-degree equals its out-degree); ``n_children`` doubles
                # as the write cursor.
                cap = len(self.ann_targets)
                self.child_t_flat = np.empty(cap, dtype=I64)
                self.child_l_flat = np.empty(cap, dtype=I64)
                self.child_s_flat = np.empty(cap, dtype=I64)
        events: dict[int, list] = {}
        for v, lst in algorithm._pending.items():
            for delay, idx in lst:
                events.setdefault(delay if delay > 0 else 0, []).append(
                    (v, delay, idx)
                )
        # Start rows as column arrays, pre-sorted in per-node event order.
        self.start_events = {}
        for rnd_key, ev in events.items():
            ev.sort()
            self.start_events[rnd_key] = (
                np.asarray([e[0] for e in ev], dtype=I64),
                np.asarray([e[2] for e in ev], dtype=I64),
            )
        self.timer_rounds = sorted(algorithm.wake_at_rounds)
        self.sched = _LinkScheduler(2 * csr.num_edges)
        self.inherited = np.asarray(network._link_max_backlog, dtype=I64)
        self.buckets: dict[int, tuple] = {}
        self.sent = 0
        self.delivered = 0
        self.edge_counts = np.zeros(csr.num_edges, dtype=I64)
        self.seen_linkmax = 0
        self.max_rounds = 0
        self.last_executed = 0

    def _slot_of(self, idx: int, v: int) -> Optional[int]:
        key = idx * self.n + v
        j = int(np.searchsorted(self.slot_keys, key))
        if j < len(self.slot_keys) and self.slot_keys[j] == key:
            return j
        return None

    @classmethod
    def build(cls, algorithm, network) -> Optional["PartAggregationKernel"]:
        if network.bandwidth != 1 or network.strict_bandwidth:
            return None
        n = network._csr.num_vertices
        if (len(algorithm.masks) + 1) * n >= 2**62 or n > _PACKED_NODE_LIMIT:
            return None
        kernel = cls(algorithm, network)
        return kernel if kernel.valid else None

    def start(self, max_rounds: int) -> None:
        self.max_rounds = max_rounds
        self._do_round(0)

    def next_round(self, after: int) -> Optional[int]:
        cands = []
        if self.buckets:
            cands.append(after + 1)
        if self.start_events:
            cands.append(min(self.start_events))
        for t in self.timer_rounds:
            # Declared timer rounds all execute (the per-node probe keeps
            # them), even when no start or message lands on them.
            if t > after:
                cands.append(t)
                break
        return min(cands) if cands else None

    def bulk_round(self, rnd: int) -> None:
        self._do_round(rnd)

    def _do_round(self, rnd: int) -> None:
        self.last_executed = rnd
        objs: list = []
        extra: list = []  # (node, sub, band, kind, link, target, tslot, sender, ival)
        chunks: list = []  # column-array chunks, same 9-column layout
        vec = None
        starts = self.start_events.pop(rnd, None)
        if starts is not None:
            vs, idxs = starts
            slots = np.searchsorted(self.slot_keys, idxs * self.n + vs)
            announcing = np.flatnonzero(self.expected[slots] > 0)
            if len(announcing):
                a_slots = slots[announcing]
                flat, cnts = _flat_slices(self.ann_starts, a_slots)
                nodes = np.repeat(vs[announcing], cnts)
                vec = (
                    nodes,
                    np.repeat(announcing.astype(I64), cnts),
                    np.zeros(len(flat), dtype=I64),
                    np.full(len(flat), _K_ANN, dtype=I64),
                    self.ann_links[flat],
                    self.ann_targets[flat],
                    self.ann_tslot[flat],
                    nodes,
                    np.repeat(self.parent_of[a_slots], cnts),
                )
            for rank in np.flatnonzero(self.expected[slots] == 0).tolist():
                # Isolated participant: the per-node start fires inline.
                self._maybe_fire(int(slots[rank]), extra, objs, 0, rank)
        chunk = self.buckets.pop(rnd, None)
        if chunk is not None:
            (acts, kinds, links, targets, tslots, senders, ivals), in_objs = chunk
            self.delivered += len(links)
            self.edge_counts += np.bincount(
                links >> 1, minlength=len(self.edge_counts)
            )
            seen = int(self.inherited[links].max())
            if seen > self.seen_linkmax:
                self.seen_linkmax = seen
            order = np.lexsort((acts, targets))
            kinds_s = kinds[order]
            links_s = links[order]
            targets_s = targets[order]
            tslots_s = tslots[order]
            senders_s = senders[order]
            ivals_s = ivals[order]
            ann = kinds_s == _K_ANN
            np.add.at(self.heard, tslots_s[ann], 1)
            ranked = self.ranked
            reg = np.flatnonzero(ann & (ivals_s == targets_s))
            if len(reg):
                # Child registrations, batched: the sender announced in
                # this instance, so its slot lookup always hits.
                rslots = tslots_s[reg]
                rsenders = senders_s[reg]
                ts = np.searchsorted(
                    self.slot_keys, self.slot_i[rslots] * self.n + rsenders
                )
                if ranked:
                    # Scatter into the flat child arrays: group the batch
                    # by slot (stable, so in-batch order is kept) and place
                    # each row at its slot's cursor plus its in-group rank.
                    grp = np.argsort(rslots, kind="stable")
                    rs = rslots[grp]
                    boundary = np.ones(len(rs), dtype=bool)
                    boundary[1:] = rs[1:] != rs[:-1]
                    gstart = np.flatnonzero(boundary)
                    glen = np.diff(np.append(gstart, len(rs)))
                    within = np.arange(len(rs), dtype=I64) - np.repeat(
                        gstart, glen
                    )
                    pos = self.ann_starts[rs] + self.n_children[rs] + within
                    self.child_t_flat[pos] = rsenders[grp]
                    self.child_l_flat[pos] = links_s[reg][grp] ^ 1
                    self.child_s_flat[pos] = ts[grp]
                else:
                    children = self.children
                    for slot, snd, lnk, t in zip(
                        rslots.tolist(), rsenders.tolist(),
                        links_s[reg].tolist(), ts.tolist(),
                    ):
                        children.setdefault(slot, []).append((snd, lnk ^ 1, t))
                np.add.at(self.n_children, rslots, 1)
            ups = np.flatnonzero(kinds_s == _K_UP)
            if len(ups):
                np.add.at(self.n_child_vals, tslots_s[ups], 1)
                if ranked:
                    self.fold_at(self.acc_rank, tslots_s[ups], ivals_s[ups])
                else:
                    child_vals = self.child_vals
                    for slot, ival in zip(
                        tslots_s[ups].tolist(), ivals_s[ups].tolist()
                    ):
                        child_vals.setdefault(slot, []).append(in_objs[ival])
            downs = np.flatnonzero(kinds_s == _K_DOWN)
            if len(downs):
                if ranked:
                    self._downs_ranked(
                        tslots_s[downs], ivals_s[downs], chunks
                    )
                else:
                    sub = 0
                    for slot, ival in zip(
                        tslots_s[downs].tolist(), ivals_s[downs].tolist()
                    ):
                        self._deliver_down(
                            slot, in_objs[ival], extra, objs, 1, sub
                        )
                        sub += 1
            au = kinds_s <= _K_UP
            uq, first = np.unique(tslots_s[au], return_index=True)
            # Fire eligibility as one array test (the guards of
            # ``_maybe_fire``, which only eligible slots now reach); the
            # per-node fire order is first-touch order, and the skipped
            # slots would not have advanced the engine's tiebreak counter.
            elig = (
                ~self.done[uq]
                & (self.heard[uq] >= self.expected[uq])
                & (self.n_child_vals[uq] >= self.n_children[uq])
            )
            uq = uq[elig]
            first = first[elig]
            if len(uq):
                fire = uq[np.argsort(first, kind="stable")]
                if ranked:
                    self._fire_batch_ranked(fire, chunks)
                else:
                    self._fire_batch(fire, extra, objs)
        if vec is not None:
            chunks.append(vec)
        if extra:
            cols = list(zip(*extra))
            chunks.append(tuple(np.asarray(col, dtype=I64) for col in cols))
        if not chunks:
            return
        if len(chunks) == 1:
            vec = chunks[0]
        else:
            # Rows with equal (node, band, sub) keys never span chunks (the
            # only equal-key groups are single multicasts, each emitted by
            # one chunk), so the stable lexsort below is order-insensitive
            # to chunk concatenation order.
            vec = tuple(np.concatenate(pair) for pair in zip(*chunks))
        nodes, subs, bands, kinds, links, targets, tslots, senders, ivals = vec
        order = np.lexsort((subs, bands, nodes))
        links_o = links[order]
        deliv, acts = self.sched.schedule(rnd, links_o, rnd < self.max_rounds)
        self.sent += len(links_o)
        self._push(deliv, (
            acts, kinds[order], links_o, targets[order], tslots[order],
            senders[order], ivals[order],
        ), objs)

    def _children_rows(self, slots, subs, ranks, band, chunks) -> None:
        """Emit each slot's DOWN multicast as one vectorized chunk."""
        cnt = self.n_children[slots]
        total = int(cnt.sum())
        if not total:
            return
        flat = np.repeat(self.ann_starts[slots], cnt) + _ranks(cnt)
        nodes = np.repeat(self.slot_v[slots], cnt)
        chunks.append((
            nodes,
            np.repeat(subs, cnt),
            np.full(total, band, dtype=I64),
            np.full(total, _K_DOWN, dtype=I64),
            self.child_l_flat[flat],
            self.child_t_flat[flat],
            self.child_s_flat[flat],
            nodes,
            np.repeat(ranks, cnt),
        ))

    def _downs_ranked(self, dslots, dranks, chunks) -> None:
        table = self.rank_table
        delivered = self.alg.delivered
        slot_v_list = self.slot_v_list
        slot_i_list = self.slot_i_list
        for slot, rank in zip(dslots.tolist(), dranks.tolist()):
            delivered[slot_i_list[slot]][slot_v_list[slot]] = table[rank]
        self._children_rows(
            dslots, np.arange(len(dslots), dtype=I64), dranks, 1, chunks
        )

    def _fire_batch_ranked(self, slots, chunks) -> None:
        self.done[slots] = True
        alg = self.alg
        table = self.rank_table
        ranks = self.acc_rank[slots]
        vs = self.slot_v[slots]
        parents = self.parent_of[slots]
        subs = np.arange(len(slots), dtype=I64)
        isroot = parents == vs
        ridx = np.flatnonzero(isroot)
        if len(ridx):
            results = alg.results
            delivered = alg.delivered
            for idx, v, rank in zip(
                self.slot_i[slots[ridx]].tolist(),
                vs[ridx].tolist(), ranks[ridx].tolist(),
            ):
                value = table[rank]
                results[idx] = value
                delivered[idx][v] = value
            if self.broadcast:
                self._children_rows(
                    slots[ridx], subs[ridx], ranks[ridx], 2, chunks
                )
        uidx = np.flatnonzero(~isroot & (parents != UNREACHED))
        if len(uidx):
            upslots = slots[uidx]
            chunks.append((
                vs[uidx],
                subs[uidx],
                np.full(len(uidx), 2, dtype=I64),
                np.full(len(uidx), _K_UP, dtype=I64),
                self.up_link[upslots],
                parents[uidx],
                self.up_tslot[upslots],
                vs[uidx],
                ranks[uidx],
            ))

    def _fire_batch(self, slots, out, objs) -> None:
        # The ``_maybe_fire`` guards already hold for every slot here (the
        # caller checked them as one array test), so each slot fires
        # exactly once; gathering the per-slot columns up front keeps the
        # loop body to plain list/dict operations.
        self.done[slots] = True
        alg = self.alg
        op = self.op
        identity = self.identity
        values = alg.values
        results = alg.results
        delivered = alg.delivered
        child_vals = self.child_vals
        children = self.children
        broadcast = self.broadcast
        sub = 0
        for slot, v, idx, parent, uplink, uptslot in zip(
            slots.tolist(),
            self.slot_v[slots].tolist(),
            self.slot_i[slots].tolist(),
            self.parent_of[slots].tolist(),
            self.up_link[slots].tolist(),
            self.up_tslot[slots].tolist(),
        ):
            combined = values[idx].get(v, _MISSING)
            if combined is _MISSING:
                combined = identity
            vals = child_vals.get(slot)
            if vals:
                for value in vals:
                    combined = op(combined, value)
            if parent == v:
                results[idx] = combined
                delivered[idx][v] = combined
                if broadcast:
                    kids = children.get(slot)
                    if kids:
                        objs.append(combined)
                        ival = len(objs) - 1
                        for target, link, tslot in kids:
                            out.append(
                                (v, sub, 2, _K_DOWN, link, target, tslot,
                                 v, ival)
                            )
            elif parent != UNREACHED:
                objs.append(combined)
                out.append((v, sub, 2, _K_UP, uplink, parent, uptslot,
                            v, len(objs) - 1))
            sub += 1

    def _maybe_fire(self, slot, out, objs, band, sub) -> bool:
        if self.done[slot] or self.heard[slot] < self.expected[slot]:
            return False
        if self.ranked:
            if self.n_child_vals[slot] < self.n_children[slot]:
                return False
            rank = int(self.acc_rank[slot])
            v = self.slot_v_list[slot]
            idx = self.slot_i_list[slot]
            self.done[slot] = True
            parent = int(self.parent_of[slot])
            if parent == v:
                value = self.rank_table[rank]
                self.alg.results[idx] = value
                self.alg.delivered[idx][v] = value
                kids = int(self.n_children[slot])
                if self.broadcast and kids:
                    start = int(self.ann_starts[slot])
                    for pos in range(start, start + kids):
                        out.append((
                            v, sub, band, _K_DOWN,
                            int(self.child_l_flat[pos]),
                            int(self.child_t_flat[pos]),
                            int(self.child_s_flat[pos]), v, rank,
                        ))
            elif parent != UNREACHED:
                out.append((v, sub, band, _K_UP, int(self.up_link[slot]),
                            parent, int(self.up_tslot[slot]), v, rank))
            return True
        kids = self.children.get(slot)
        vals = self.child_vals.get(slot, ())
        if kids and len(vals) < len(kids):
            return False
        alg = self.alg
        v = int(self.slot_v[slot])
        idx = int(self.slot_i[slot])
        combined = alg.values[idx].get(v, _MISSING)
        if combined is _MISSING:
            combined = self.identity
        for value in vals:
            combined = self.op(combined, value)
        self.done[slot] = True
        parent = int(self.parent_of[slot])
        if parent == v:
            alg.results[idx] = combined
            self._deliver_down(slot, combined, out, objs, band, sub)
        elif parent != UNREACHED:
            objs.append(combined)
            out.append((v, sub, band, _K_UP, int(self.up_link[slot]),
                        parent, int(self.up_tslot[slot]), v, len(objs) - 1))
        return True

    def _deliver_down(self, slot, value, out, objs, band, sub) -> None:
        alg = self.alg
        v = self.slot_v_list[slot]
        idx = self.slot_i_list[slot]
        if not self.broadcast:
            if int(self.parent_of[slot]) == v:
                alg.delivered[idx][v] = value
            return
        alg.delivered[idx][v] = value
        kids = self.children.get(slot)
        if kids:
            objs.append(value)
            ival = len(objs) - 1
            for target, link, tslot in kids:
                # One shared payload per multicast; per-link traffic still
                # counts every directed link (per_edge_messages pin).
                out.append((v, sub, band, _K_DOWN, link, target, tslot, v, ival))

    def _push(self, deliv, cols, objs) -> None:
        order = np.argsort(deliv, kind="stable")
        sdeliv = deliv[order]
        scols = tuple(col[order] for col in cols)
        edges = np.flatnonzero(np.diff(sdeliv)) + 1
        bounds = np.concatenate(([0], edges, [len(sdeliv)]))
        for k in range(len(bounds) - 1):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            if lo == hi:
                continue
            rnd = int(sdeliv[lo])
            part = tuple(col[lo:hi] for col in scols)
            prior = self.buckets.get(rnd)
            if prior is None:
                self.buckets[rnd] = (part, objs)
            else:
                pcols, pobjs = prior
                if pobjs is not objs:
                    # Re-base payload indices onto the bucket's object list;
                    # earlier chunks index its unchanged prefix.
                    shift = part[6].copy()
                    shift[part[1] != _K_ANN] += len(pobjs)
                    part = part[:6] + (shift,)
                    pobjs.extend(objs)
                self.buckets[rnd] = (
                    tuple(np.concatenate(pair) for pair in zip(pcols, part)),
                    pobjs,
                )

    def awake_at_cutoff(self, rnd: int) -> int:
        # Waiting participants halt between timer rounds, so the per-node
        # engine's awake set is empty at any cutoff.
        return 0

    def _spill(self, network) -> None:
        alg = self.alg
        slot_i = self.slot_i
        entries = []
        for rnd in sorted(self.buckets):
            (acts, kinds, links, targets, tslots, senders, ivals), objs = \
                self.buckets[rnd]
            idxs = slot_i[tslots].tolist()
            rows = zip(
                acts.tolist(), kinds.tolist(), links.tolist(),
                targets.tolist(), senders.tolist(), ivals.tolist(), idxs,
            )
            for act, kind, link, target, sender, ival, idx in rows:
                if kind == _K_ANN:
                    msg = Message(sender, -1, alg._tags_ann[idx], ival, idx)
                    entries.append((act, link, msg))
                    continue
                payload = self.rank_table[ival] if self.ranked else objs[ival]
                if kind == _K_UP:
                    msg = Message(
                        sender, target, alg._tags_up[idx], payload, idx
                    )
                else:
                    msg = Message(
                        sender, -1, alg._tags_down[idx], payload, idx
                    )
                entries.append((act, link, msg))
        self.buckets.clear()
        _spill_ring(network, entries)

    def finish(self, network, metrics, terminated: bool, final_round: int) -> None:
        alg = self.alg
        _finish_metrics(self, network, metrics)
        metrics.max_link_backlog = _ring_backlog(self)
        _writeback_linkmax(self, network)
        if self.buckets:
            self._spill(network)
        _halt_all(network)
        if alg.wake_at_rounds:
            alg.current_round = self.last_executed
        _prune_pending(alg._pending, final_round)
        self._writeback_state()

    def _writeback_state(self) -> None:
        """Mirror the kernel's convergecast state into the per-node dicts.

        A cut-off run hands the algorithm object back with spilled traffic
        in the queues; the follow-up ``reset=False`` run continues on the
        per-node path (dirty network), so heard counts, registered
        children, child reports and fired slots must land in the exact
        per-node containers.
        """
        alg = self.alg
        slot_i, slot_v = self.slot_i_list, self.slot_v_list
        for slot, h in zip(
            np.flatnonzero(self.heard).tolist(),
            self.heard[self.heard > 0].tolist(),
        ):
            alg._heard[slot_i[slot]][slot_v[slot]] = h
        for slot in np.flatnonzero(self.done).tolist():
            alg._done[slot_i[slot]].add(slot_v[slot])
        if self.ranked:
            for slot in np.flatnonzero(self.n_children).tolist():
                idx, v = slot_i[slot], slot_v[slot]
                start = int(self.ann_starts[slot])
                end = start + int(self.n_children[slot])
                alg._child_targets[idx][v] = \
                    self.child_t_flat[start:end].tolist()
                alg._child_links[idx][v] = \
                    self.child_l_flat[start:end].tolist()
            table = self.rank_table
            identity = self.identity
            for slot in np.flatnonzero(self.n_child_vals).tolist():
                # The individual child reports were folded on arrival; a
                # partially-folded head padded with the identity reproduces
                # both the pending-report count and (``min``/``max`` being
                # order-free) the final fold.
                count = int(self.n_child_vals[slot])
                head = table[int(self.acc_rank[slot])]
                alg._child_values[slot_i[slot]][slot_v[slot]] = \
                    [head] + [identity] * (count - 1)
        else:
            for slot, kids in self.children.items():
                idx, v = slot_i[slot], slot_v[slot]
                alg._child_targets[idx][v] = [t for t, _, _ in kids]
                alg._child_links[idx][v] = [lnk for _, lnk, _ in kids]
            for slot, vals in self.child_vals.items():
                alg._child_values[slot_i[slot]][slot_v[slot]] = list(vals)
