"""Random-delay scheduling of many concurrent sub-algorithms.

Theorem 2.1 of the paper (Ghaffari, PODC 2015 / [LMR99]) states that ``m``
distributed algorithms, each with dilation at most ``d`` and with total
per-edge congestion at most ``c``, can be scheduled together so that all of
them finish in ``O(c + d log n)`` rounds, by delaying the start of each
algorithm by a random amount.

The distributed shortcut construction relies on this to grow the ``N``
truncated BFS trees of the augmented subgraphs ``G[S_i] ∪ H_i``
simultaneously.  This module provides :class:`RandomDelayScheduler`, a
:class:`~repro.congest.algorithm.DistributedAlgorithm` wrapper that:

* assigns each sub-algorithm a random start delay (from shared randomness,
  exactly as the paper assumes — the delays are drawn once by the driver
  and given to every node, modelling the ``O(log^2 n)``-bit shared string);
* tags each sub-algorithm's messages with its index so receivers dispatch
  them to the right handler;
* relies on the network's per-link queues to meter concurrent messages out
  at CONGEST bandwidth, so the measured round count genuinely reflects the
  congestion + dilation cost.
"""

from __future__ import annotations

from typing import Sequence

from .algorithm import DistributedAlgorithm
from .message import Message
from .node import NodeContext

from ..rng import RandomLike, ensure_rng


def draw_random_delays(
    num_algorithms: int,
    max_delay: int,
    rng: RandomLike = None,
) -> list[int]:
    """Draw one start delay per sub-algorithm, uniform in ``[0, max_delay]``.

    The paper sets ``max_delay`` proportional to the congestion bound
    (``O(k_D log n)`` for the shortcut BFS trees).  Using a single shared
    random string for all delays matches the shared-randomness assumption of
    Theorem 2.1.
    """
    if num_algorithms < 0:
        raise ValueError("num_algorithms must be non-negative")
    if max_delay < 0:
        raise ValueError("max_delay must be non-negative")
    r = ensure_rng(rng)
    return [r.randint(0, max_delay) for _ in range(num_algorithms)]


class RandomDelayScheduler(DistributedAlgorithm):
    """Run several sub-algorithms concurrently with per-algorithm start delays.

    Each sub-algorithm must use a distinct ``algorithm_id`` (its index in the
    ``sub_algorithms`` list) when sending; the primitives in
    :mod:`repro.congest.primitives` all accept an ``algorithm_id`` argument
    for this purpose and read/write state under distinct prefixes.

    Args:
        sub_algorithms: the algorithms to multiplex.
        delays: per-algorithm start delays (rounds); typically drawn with
            :func:`draw_random_delays`.
    """

    name = "random_delay_scheduler"

    def __init__(self, sub_algorithms: Sequence[DistributedAlgorithm], delays: Sequence[int]) -> None:
        if len(sub_algorithms) != len(delays):
            raise ValueError("need exactly one delay per sub-algorithm")
        self.sub_algorithms = list(sub_algorithms)
        self.delays = list(delays)

    def initialize(self, node: NodeContext) -> None:
        node.state["__sched_round"] = 0
        node.state["__sched_started"] = [False] * len(self.sub_algorithms)
        self._start_due(node)
        self._maybe_halt(node)

    def on_round(self, node: NodeContext, messages: list[Message]) -> None:
        node.state["__sched_round"] += 1
        self._start_due(node)
        # Dispatch messages to the sub-algorithm they belong to.  A started
        # sub-algorithm with no messages this round is not invoked: all our
        # primitives are message-driven after their initial send.
        by_algorithm: dict[int, list[Message]] = {}
        for msg in messages:
            by_algorithm.setdefault(msg.algorithm_id, []).append(msg)
        for idx, batch in by_algorithm.items():
            if 0 <= idx < len(self.sub_algorithms):
                if not node.state["__sched_started"][idx]:
                    # A message can only arrive after the sender started, so
                    # start locally too (delays are start times, not gates on
                    # participation).
                    node.state["__sched_started"][idx] = True
                self.sub_algorithms[idx].on_round(node, batch)
        self._maybe_halt(node)

    def _maybe_halt(self, node: NodeContext) -> None:
        # A node may only go quiescent once every sub-algorithm's start delay
        # has elapsed locally; until then it must stay awake so that the
        # round counter keeps advancing even with no traffic.
        if all(node.state["__sched_started"]):
            node.halt()
        else:
            node.wake()

    # ------------------------------------------------------------------
    def _start_due(self, node: NodeContext) -> None:
        current = node.state["__sched_round"]
        started = node.state["__sched_started"]
        for idx, delay in enumerate(self.delays):
            if not started[idx] and current >= delay:
                started[idx] = True
                self.sub_algorithms[idx].initialize(node)
