"""Random-delay scheduling of many concurrent sub-algorithms.

Theorem 2.1 of the paper (Ghaffari, PODC 2015 / [LMR99]) states that ``m``
distributed algorithms, each with dilation at most ``d`` and with total
per-edge congestion at most ``c``, can be scheduled together so that all of
them finish in ``O(c + d log n)`` rounds, by delaying the start of each
algorithm by a random amount.

The distributed shortcut construction relies on this to grow the ``N``
truncated BFS trees of the augmented subgraphs ``G[S_i] ∪ H_i``
simultaneously.  This module provides :class:`RandomDelayScheduler`, a
:class:`~repro.congest.algorithm.DistributedAlgorithm` wrapper that:

* assigns each sub-algorithm a random start delay (from shared randomness,
  exactly as the paper assumes — the delays are drawn once by the driver
  and given to every node, modelling the ``O(log^2 n)``-bit shared string);
* tags each sub-algorithm's messages with its index so receivers dispatch
  them to the right handler;
* relies on the network's per-link queues to meter concurrent messages out
  at CONGEST bandwidth, so the measured round count genuinely reflects the
  congestion + dilation cost.

For the specific (and round-dominant) case of a fleet of truncated BFS
instances over CSR link masks, :class:`~repro.congest.primitives.
concurrent_bfs.ConcurrentMaskedBFS` implements this exact schedule —
identical message timing, tags and metrics — with flat per-instance labels
instead of per-node state dictionaries; the generic scheduler here remains
the reference implementation (and the oracle the equivalence tests pin the
specialised fleet against).
"""

from __future__ import annotations

from typing import Sequence

from .algorithm import DistributedAlgorithm
from .message import Message
from .node import NodeContext

from ..rng import RandomLike, ensure_rng


def draw_random_delays(
    num_algorithms: int,
    max_delay: int,
    rng: RandomLike = None,
) -> list[int]:
    """Draw one start delay per sub-algorithm, uniform in ``[0, max_delay]``.

    The paper sets ``max_delay`` proportional to the congestion bound
    (``O(k_D log n)`` for the shortcut BFS trees).  Using a single shared
    random string for all delays matches the shared-randomness assumption of
    Theorem 2.1.
    """
    if num_algorithms < 0:
        raise ValueError("num_algorithms must be non-negative")
    if max_delay < 0:
        raise ValueError("max_delay must be non-negative")
    r = ensure_rng(rng)
    return [r.randint(0, max_delay) for _ in range(num_algorithms)]


class RandomDelayScheduler(DistributedAlgorithm):
    """Run several sub-algorithms concurrently with per-algorithm start delays.

    Each sub-algorithm must use a distinct ``algorithm_id`` (its index in the
    ``sub_algorithms`` list) when sending; the primitives in
    :mod:`repro.congest.primitives` all accept an ``algorithm_id`` argument
    for this purpose and read/write state under distinct prefixes.

    Args:
        sub_algorithms: the algorithms to multiplex.
        delays: per-algorithm start delays (rounds); typically drawn with
            :func:`draw_random_delays`.
    """

    name = "random_delay_scheduler"

    def __init__(self, sub_algorithms: Sequence[DistributedAlgorithm], delays: Sequence[int]) -> None:
        if len(sub_algorithms) != len(delays):
            raise ValueError("need exactly one delay per sub-algorithm")
        self.sub_algorithms = list(sub_algorithms)
        self.delays = list(delays)
        # Due-delay schedule, shared by every node: (delay, index) ascending.
        # Each node keeps a cursor into it, so starting the due sub-algorithms
        # of a round costs O(newly due) instead of rescanning all N delays.
        # Sorting by (delay, index) reproduces the index-order starts of the
        # naive scan: every node observes the same global round number, so
        # the entries that come due together always share one delay value.
        self._schedule = sorted((delay, idx) for idx, delay in enumerate(self.delays))
        # Timer protocol (see repro.congest.algorithm): the delays are the
        # globally known rounds at which every node must run to start the due
        # sub-algorithms.  Declaring them lets waiting nodes halt — the
        # engine revives the network at exactly these rounds and maintains
        # ``self.current_round``, so no per-node round counter has to tick
        # through the waiting stretches.  Delay 0 starts in ``initialize``.
        self.wake_at_rounds = tuple(sorted({d for d in self.delays if d > 0}))

    def initialize(self, node: NodeContext) -> None:
        node.state["__sched_round"] = 0
        node.state["__sched_started"] = [False] * len(self.sub_algorithms)
        node.state["__sched_cursor"] = 0
        node.state["__sched_unstarted"] = len(self.sub_algorithms)
        node.state["__sched_next_due"] = self._schedule[0][0] if self._schedule else 0
        self._start_due(node, 0)
        self._maybe_halt(node)

    def on_round(self, node: NodeContext, messages: list[Message]) -> None:
        state = node.state
        rnd = self.current_round
        if rnd is None:
            # Engine without timer support (the reference oracles in the
            # test suite): tick a per-node counter instead.
            rnd = state["__sched_round"] + 1
            state["__sched_round"] = rnd
        # __sched_next_due caches the head of the unprocessed schedule, so a
        # waiting round costs two dict reads instead of a _start_due scan.
        if state["__sched_unstarted"] and rnd >= state["__sched_next_due"]:
            self._start_due(node, rnd)
        # Dispatch messages to the sub-algorithm they belong to.  A started
        # sub-algorithm with no messages this round is not invoked: all our
        # primitives are message-driven after their initial send.  Inboxes
        # whose messages all belong to one sub-algorithm dominate (with unit
        # bandwidth a link carries one message per round, and concurrent BFS
        # waves tend to arrive on different links of the same instance), so
        # that case dispatches the inbox whole and skips the grouping dict.
        if messages:
            started = state["__sched_started"]
            num = len(self.sub_algorithms)
            idx = messages[0].algorithm_id
            for msg in messages:
                if msg.algorithm_id != idx:
                    break
            else:
                if 0 <= idx < num:
                    if not started[idx]:
                        # A message can only arrive after the sender started,
                        # so start locally too (delays are start times, not
                        # gates on participation).
                        started[idx] = True
                        state["__sched_unstarted"] -= 1
                    self.sub_algorithms[idx].on_round(node, messages)
                idx = None
            if idx is not None:
                by_algorithm: dict[int, list[Message]] = {}
                for msg in messages:
                    by_algorithm.setdefault(msg.algorithm_id, []).append(msg)
                for idx, batch in by_algorithm.items():
                    if 0 <= idx < num:
                        if not started[idx]:
                            started[idx] = True
                            state["__sched_unstarted"] -= 1
                        self.sub_algorithms[idx].on_round(node, batch)
        # Inline _maybe_halt.  Started sub-algorithms are message-driven (a
        # sub-algorithm's handler only runs when one of its messages
        # arrives), so between events the node can always halt: on a
        # timer-honouring engine pending start delays revive it via
        # ``wake_at_rounds``, and on one without, it must instead stay awake
        # so its per-node round counter keeps advancing.
        if not state["__sched_unstarted"] or self.current_round is not None:
            node.halt()
        elif node.halted:
            node.wake()

    def _maybe_halt(self, node: NodeContext) -> None:
        if not node.state["__sched_unstarted"] or self.current_round is not None:
            node.halt()
        else:
            node.wake()

    # ------------------------------------------------------------------
    def _start_due(self, node: NodeContext, current: int) -> None:
        state = node.state
        schedule = self._schedule
        cursor = state["__sched_cursor"]
        end = len(schedule)
        if cursor >= end:
            return
        started = state["__sched_started"]
        while cursor < end and schedule[cursor][0] <= current:
            idx = schedule[cursor][1]
            cursor += 1
            if not started[idx]:
                started[idx] = True
                state["__sched_unstarted"] -= 1
                self.sub_algorithms[idx].initialize(node)
        state["__sched_cursor"] = cursor
        state["__sched_next_due"] = schedule[cursor][0] if cursor < end else current
