"""The synchronous CONGEST round engine.

The :class:`Network` wraps a :class:`~repro.graphs.graph.Graph` and executes
a :class:`~repro.congest.algorithm.DistributedAlgorithm` in synchronous
rounds:

1. every directed link with pending traffic delivers up to ``bandwidth``
   queued messages;
2. every *touched* node — awake (not halted), or a receiver of a message
   this round — runs its ``on_round`` handler;
3. the messages the handlers produce are enqueued on their links for
   delivery in the next round.

Messages beyond a link's per-round bandwidth are *queued*, so an algorithm
that overloads a link simply takes more rounds — exactly the penalty the
CONGEST model charges.  The engine records the metrics the paper's bounds
talk about: total rounds to quiescence, total messages, the maximum backlog
observed on any link (a per-link congestion proxy) and per-edge message
counts.

Active-set round engine
-----------------------
A round costs O(nodes-and-links-actually-touched), not O(n + links):

* **Awake-node worklist.**  ``NodeContext.halt`` / ``wake`` incrementally
  maintain the set of non-halted nodes, so the engine never scans all ``n``
  nodes per round — it runs exactly ``awake ∪ receivers`` (in ascending node
  id order, matching the legacy full-scan order).  Quiescence becomes an
  O(1) check: no active link and an empty awake set.
* **Active-link worklist.**  Links are indexed by dense *directed link ids*
  derived from the graph's CSR snapshot: the undirected edge with id ``e``
  (canonical ``(u, v)``, ``u < v``) owns link ``2e`` for ``u -> v`` and
  ``2e + 1`` for ``v -> u``.  Per-link queues are flat ring-buffered lists
  drained ``bandwidth`` at a time; only links with pending traffic are
  visited.
* **Zero-allocation message fast path.**  Each wired ``NodeContext`` holds a
  precomputed ``neighbor -> directed link id`` table, so ``send`` enqueues
  directly onto the target ring buffer — there is no per-round outbox
  collection pass and no ``(sender, receiver)`` tuple-keyed link dict.
  Per-receiver inbox lists are pooled and reused across rounds, and
  per-edge message counters live in one flat list indexed by edge id
  (exposed through the cached :attr:`RunMetrics.per_edge_messages` dict
  property and the :meth:`RunMetrics.top_k_edges` helper).
* **Express delivery lane.**  An algorithm declaring ``single_channel``
  sends at most one message per directed link per round (its duplicate-send
  guard proves it), so link queues are pass-through: sends land directly in
  the receiver's next-round inbox and the round flip is O(receivers) with
  no per-link delivery pass at all.  Multi-channel runs (the random-delay
  scheduler) keep the metered ring path.
* **Timer protocol.**  An algorithm declaring ``wake_at_rounds`` (globally
  known deadlines, e.g. the scheduler's delay start rounds) lets waiting
  nodes halt instead of ticking no-op handlers: the engine revives every
  node exactly at the declared rounds and charges silent stretches between
  them without executing them, keeping the measured round count identical.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Optional

from ..graphs.graph import Graph
from .algorithm import ComposedAlgorithm, DistributedAlgorithm
from .bulk import BulkFallbackWarning
from .message import Message
from .node import NodeContext

#: Shared empty inbox passed to awake nodes with no incoming messages.
#: Handlers receive it read-only by contract (no algorithm mutates its
#: ``messages`` argument); sharing it avoids one list allocation per awake
#: node per round.
_NO_MESSAGES: list[Message] = []


class RoundLimitExceeded(RuntimeError):
    """Raised when an algorithm fails to reach quiescence within ``max_rounds``.

    The run's progress is not discarded: :attr:`metrics` carries the partial
    :class:`RunMetrics` accumulated up to the cutoff (``terminated=False``,
    send counts reconciled against the queued backlog) and
    :attr:`last_active_set` the number of awake nodes at the moment the
    limit was hit — together they say *where* a stalled run was stuck.
    """

    def __init__(
        self,
        message: str,
        *,
        metrics: Optional["RunMetrics"] = None,
        last_active_set: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.metrics = metrics
        self.last_active_set = last_active_set


class PartialRunError(RoundLimitExceeded):
    """A fault-injected run stalled before quiescence.

    Raised instead of the bare :class:`RoundLimitExceeded` when an
    adversarial run (``Network.run(..., adversary=...)``) hits
    ``max_rounds``: under faults a stall usually means the adversary starved
    a primitive of an un-retried message, and the partial metrics plus the
    surviving active-set size are the debugging evidence.  Subclasses
    :class:`RoundLimitExceeded`, so existing ``except`` clauses keep
    working.
    """


@dataclass
class RunMetrics:
    """Metrics of one simulation run.

    Attributes:
        rounds: number of synchronous rounds until global quiescence.
        messages_sent: total messages handed to the network by nodes.
        messages_delivered: total messages delivered to receivers.
        max_link_backlog: largest queue length observed on any directed link.
        terminated: ``True`` if the run reached quiescence (as opposed to
            being stopped by ``max_rounds`` with ``raise_on_limit=False``).
        messages_dropped: messages consumed by the adversary (or addressed
            to a crashed node) instead of reaching their receiver; always 0
            in fault-free runs.
        messages_duplicated: extra at-least-once copies injected by the
            adversary; always 0 in fault-free runs.
        crashes / recoveries: node-fault events applied during the run.
    """

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    max_link_backlog: int = 0
    terminated: bool = False
    messages_dropped: int = 0
    messages_duplicated: int = 0
    crashes: int = 0
    recoveries: int = 0
    _edge_counts: Optional[list] = field(default=None, repr=False, compare=False)
    _edge_list: Optional[list] = field(default=None, repr=False, compare=False)
    _per_edge_cache: Optional[dict] = field(default=None, repr=False, compare=False)

    @property
    def per_edge_messages(self) -> dict[tuple[int, int], int]:
        """Messages that crossed each undirected edge (both directions summed).

        Keyed by canonical edge tuple; edges that carried no message are
        omitted.  The dict is materialized from the flat edge-id counter
        array on first access and cached (runs are finished by the time
        their metrics are read, so the counters no longer change).
        """
        cached = self._per_edge_cache
        if cached is None:
            if self._edge_counts is None or self._edge_list is None:
                return {}
            edge_list = self._edge_list
            cached = {edge_list[e]: c for e, c in enumerate(self._edge_counts) if c}
            self._per_edge_cache = cached
        return cached

    @property
    def max_edge_messages(self) -> int:
        """Largest number of messages carried by any single undirected edge."""
        if self._edge_counts is None or not self._edge_counts:
            return 0
        return max(self._edge_counts)

    def top_k_edges(self, k: int) -> list[tuple[tuple[int, int], int]]:
        """The ``k`` busiest undirected edges as ``((u, v), count)`` pairs.

        Sorted by message count descending, ties broken by ascending edge
        id; edges that carried no message never appear.  Runs a heap
        selection over the flat counter array, so the full per-edge dict is
        never materialized — use this instead of
        :attr:`per_edge_messages` when only the hottest edges matter.
        """
        if k <= 0 or self._edge_counts is None or self._edge_list is None:
            return []
        top = heapq.nlargest(
            k, ((c, -e) for e, c in enumerate(self._edge_counts) if c)
        )
        edge_list = self._edge_list
        return [(edge_list[-ne], c) for c, ne in top]


class Network:
    """A CONGEST network over a given communication graph.

    Args:
        graph: the communication topology.
        bandwidth: messages a directed link may deliver per round (1 for the
            standard model; larger values model CONGEST with B-bit messages,
            used by a few tests to isolate algorithmic from congestion
            effects).
        strict_bandwidth: if ``True``, overloading a link raises
            :class:`~repro.congest.message.BandwidthExceededError` instead of
            queueing (the error surfaces from the offending ``send``, i.e.
            mid-round, with the other queues in whatever partially drained
            state the round reached).
    """

    def __init__(self, graph: Graph, *, bandwidth: int = 1, strict_bandwidth: bool = False) -> None:
        if bandwidth < 1:
            raise ValueError("bandwidth must be at least 1")
        self.graph = graph
        self.bandwidth = bandwidth
        self.strict_bandwidth = strict_bandwidth
        self._wiring_csr = None
        self._ran = False
        self._structures_clean = True
        # (network, reason) pairs already warned about a declined bulk run;
        # deliberately not cleared by reset() so each network warns once.
        self._bulk_fallback_warned: set[str] = set()
        self.reset()

    @property
    def nodes(self) -> dict[int, NodeContext]:
        """Map of node id -> :class:`NodeContext` (built lazily per reset)."""
        cache = self._nodes_cache
        if cache is None:
            cache = self._nodes_cache = dict(enumerate(self._node_list))
        return cache

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset all node state and link queues (a fresh network).

        Cheap when possible: when the topology is unchanged and the last run
        drained cleanly (or nothing ran at all), only the node state and
        per-link maxima need clearing — the link queues, head cursors and
        inboxes are empty by invariant.  State mutated from outside a run
        (``node(v).state[...] = ...``, ``node(v).halt()``) is wiped either
        way, as "a fresh network" promises.
        """
        csr = self.graph.csr()
        if self._wiring_csr is csr:
            if self._structures_clean and not self._active and not self._pending_receivers:
                self._link_max_backlog[:] = self._zero_links
                awake = self._awake
                awake.clear()
                awake.update(range(csr.num_vertices))
                for ctx in self._node_list:
                    ctx.state = {}
                    ctx.halted = False
                    ctx._payload_ok = None
                self._ran = False
                return
        self._full_reset(csr)

    def _full_reset(self, csr) -> None:
        self._csr = csr
        n = csr.num_vertices
        num_links = 2 * csr.num_edges
        if self._wiring_csr is not csr:
            # Directed link 2e carries lo -> hi of canonical edge e; 2e + 1
            # the reverse.  Each node gets its own neighbor -> out-link table
            # so a send resolves its link with one int-keyed dict lookup.
            # The tables only depend on the CSR snapshot, so they are built
            # once and shared by every reset of the same topology.  Hot
            # per-link tables are plain lists: unlike array('l') they hand
            # back cached small ints instead of boxing on every read.
            receiver_of = [0] * num_links
            out_links: list[dict[int, int]] = [{} for _ in range(n)]
            for eid, (u, v) in enumerate(csr.edge_list):
                link = eid + eid
                receiver_of[link] = v
                receiver_of[link + 1] = u
                out_links[u][v] = link
                out_links[v][u] = link + 1
            self._receiver_of = receiver_of
            self._out_links = out_links
            self._neighbor_tuples = [tuple(csr.neighbors(v)) for v in range(n)]
            self._zero_links: list[int] = [0] * num_links
            self._wiring_csr = csr
        self._queues: list[list[Message]] = [[] for _ in range(num_links)]
        self._heads: list[int] = [0] * num_links
        self._link_max_backlog: list[int] = [0] * num_links
        self._active: list[int] = []
        self._is_active = bytearray(num_links)
        # Pooled per-node inboxes, reused across rounds (cleared after use),
        # plus the express lane's next-round pending lists (swapped with the
        # inboxes at each flip, so both pools recycle forever).
        self._inbox_of: list[list[Message]] = [[] for _ in range(n)]
        self._pending: list[list[Message]] = [[] for _ in range(n)]
        self._pending_receivers: list[int] = []
        # Awake-node worklist: every node starts non-halted.  halt()/wake()
        # keep this set current, so quiescence checks and per-round node
        # selection never scan the full node table.
        self._awake: set[int] = set(range(n))
        strict_limit = self.bandwidth if self.strict_bandwidth else float("inf")
        out_links = self._out_links
        neighbor_tuples = self._neighbor_tuples
        queues, heads = self._queues, self._heads
        link_max, is_active = self._link_max_backlog, self._is_active
        active, awake = self._active, self._awake
        # Positional construction (field order of the NodeContext dataclass):
        # measurably cheaper than keyword binding at n = 10^4 nodes.
        self._node_list = [
            NodeContext(
                v, neighbor_tuples[v], {}, False, [], set(),
                out_links[v], queues, heads, link_max, is_active, active,
                awake, strict_limit, None,
            )
            for v in range(n)
        ]
        pending_receivers = self._pending_receivers
        for ctx in self._node_list:
            ctx._pending_receivers = pending_receivers
        self._nodes_cache: Optional[dict[int, NodeContext]] = None
        self._ran = False
        self._structures_clean = True

    def node(self, v: int) -> NodeContext:
        """Return the :class:`NodeContext` of node ``v`` (for inspecting outputs)."""
        return self.nodes[v]

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: DistributedAlgorithm,
        *,
        max_rounds: int = 100_000,
        raise_on_limit: bool = True,
        reset: bool = True,
        adversary=None,
    ) -> RunMetrics:
        """Execute ``algorithm`` until global quiescence.

        Global quiescence means every node reports ``finished`` and no
        message is queued on any link.  For :class:`ComposedAlgorithm` the
        engine advances all nodes to the next stage whenever the current
        stage is quiescent.

        Args:
            algorithm: the algorithm to run.
            max_rounds: safety limit on the number of rounds.
            raise_on_limit: raise :class:`RoundLimitExceeded` when the limit
                is hit (otherwise return metrics with ``terminated=False``).
            reset: start from a clean network state (set to ``False`` to run
                a follow-up algorithm that reads earlier algorithms' state;
                nodes left halted by the earlier run stay halted until this
                algorithm's ``initialize`` wakes them or a message arrives).
            adversary: optional :class:`~repro.congest.adversary.Adversary`
                interposed on the delivery path (message drops/duplication/
                latency/reordering and scheduled node crashes).  ``None``
                keeps the fault-free fast path untouched; a no-fault
                adversary produces bit-identical metrics through the
                metered ring path.  A stalled adversarial run raises
                :class:`PartialRunError` instead of the bare limit error.

        Returns:
            The :class:`RunMetrics` of the run.
        """
        if adversary is not None:
            return self._run_adversarial(
                algorithm,
                adversary,
                max_rounds=max_rounds,
                raise_on_limit=raise_on_limit,
                reset=reset,
            )
        if reset and self._ran:
            self.reset()
        if getattr(algorithm, "bulk_capable", False):
            bulk = self._try_bulk(algorithm, max_rounds, raise_on_limit)
            if bulk is not None:
                return bulk
        metrics = RunMetrics()
        metrics._edge_counts = [0] * self._csr.num_edges
        metrics._edge_list = self._csr.edge_list
        # Sends enqueue without touching a counter; the send total is an
        # invariant of the queues instead: sent = delivered + backlog growth.
        backlog_start = self._pending_backlog()
        self._ran = True
        self._structures_clean = False

        # Express lane: a single-channel algorithm sends at most one message
        # per directed link per round (its duplicate-send guard proves it),
        # so every link queue is pass-through and messages can be placed
        # straight into the receivers' next-round inboxes — no per-link
        # delivery pass at all.  Multi-channel algorithms (the random-delay
        # scheduler) and runs resuming with ring traffic use the ring path.
        express = bool(getattr(algorithm, "single_channel", False)) and not self._active
        if not express and self._pending_receivers:
            self._flush_pending_to_rings()

        nodes = self._node_list
        pending = self._pending if express else None
        edge_counts = metrics._edge_counts
        if express and self._pending_receivers:
            # Leftover express traffic from a cut-off run delivers during
            # this run; credit it to this run's per-edge counters (its
            # send-time counts were retracted when that run stopped).
            out_links = self._out_links
            for v in self._pending_receivers:
                for m in self._pending[v]:
                    edge_counts[out_links[m.sender][v] >> 1] += 1
        # Timer protocol (opt-in; see the module docstring of
        # repro.congest.algorithm): the algorithm declares the global rounds
        # at which every node must run, so waiting nodes can halt and the
        # engine both revives the network at exactly those rounds and
        # charges silent stretches between them without executing them.
        timers: tuple = getattr(algorithm, "wake_at_rounds", ()) or ()
        num_timers = len(timers)
        timer_pos = 0
        if num_timers:
            algorithm.current_round = 0
        # Opt-in escape hatch for timer schedules that over-provision (retry
        # checkpoints): at a silent moment, an algorithm whose probe reports
        # no pending timer-driven work lets the run terminate instead of
        # charging the remaining (provably no-op) checkpoints.
        timer_probe = getattr(algorithm, "pending_timer_work", None)

        for ctx in nodes:
            ctx._express_pending = pending
            ctx._edge_counts = edge_counts
            algorithm.initialize(ctx)
            ctx._sent_this_round.clear()

        composed = isinstance(algorithm, ComposedAlgorithm)
        awake = self._awake
        inbox_of = self._inbox_of
        on_round = algorithm.on_round

        pending_receivers = self._pending_receivers
        while metrics.rounds < max_rounds:
            if not self._active and not pending_receivers and not awake:
                timers_needed = timer_pos < num_timers
                if timers_needed and timer_probe is not None and not timer_probe():
                    timers_needed = False
                if timers_needed:
                    # Silent but not quiescent: a timer is still pending.
                    # Every round before it provably executes nothing, so
                    # charge the stretch in one step and run the timer round.
                    jump = timers[timer_pos] - 1
                    if jump > metrics.rounds:
                        metrics.rounds = jump if jump < max_rounds else max_rounds
                        if metrics.rounds >= max_rounds:
                            continue
                else:
                    # Quiescent: no message in flight, every node halted.
                    if composed:
                        advanced = False
                        for ctx in nodes:
                            if algorithm.advance_stage(ctx):
                                advanced = True
                            ctx._sent_this_round.clear()
                        if advanced:
                            # The newly active stage may declare its own
                            # deadlines, relative to its start: rebase them
                            # to absolute rounds at the hand-off point.
                            timers = algorithm.rebase_timers(metrics.rounds)
                            num_timers = len(timers)
                            timer_pos = 0
                            if num_timers:
                                algorithm.current_round = metrics.rounds
                            continue
                    metrics.terminated = True
                    metrics.messages_sent = metrics.messages_delivered - backlog_start
                    self._structures_clean = True
                    return metrics

            metrics.rounds += 1
            timer_fired = False
            if timer_pos < num_timers:
                algorithm.current_round = metrics.rounds
                if timers[timer_pos] <= metrics.rounds:
                    timer_fired = True
                    timer_pos += 1
                    while timer_pos < num_timers and timers[timer_pos] <= metrics.rounds:
                        timer_pos += 1
            elif num_timers:
                algorithm.current_round = metrics.rounds
            if express:
                # Express flip: the pending lists ARE the inboxes; swap them
                # with the (empty) inbox pool so both recycle with zero
                # allocation, and account deliveries per receiver.
                if pending_receivers:
                    receivers = pending_receivers.copy()
                    pending_receivers.clear()
                    delivered = 0
                    for v in receivers:
                        plist = pending[v]
                        delivered += len(plist)
                        inbox_of[v], pending[v] = plist, inbox_of[v]
                    metrics.messages_delivered += delivered
                    if not metrics.max_link_backlog:
                        metrics.max_link_backlog = 1
                else:
                    receivers = ()
            else:
                receivers = self._deliver(metrics)

            # The ids to run this round, ascending (matching the legacy
            # full-scan order): awake nodes plus this round's receivers —
            # or every node when a timer is due.  sorted() copies, so
            # handlers are free to halt()/wake().
            if timer_fired:
                to_run = range(len(nodes))
            elif not awake:
                to_run = sorted(receivers)
            elif receivers:
                to_run = sorted(awake.union(receivers))
            else:
                to_run = sorted(awake)
            for v in to_run:
                ctx = nodes[v]
                inbox = inbox_of[v]
                if inbox:
                    if ctx.halted:
                        # Engine-level wake with deferred registration: most
                        # receivers halt again before their handler returns,
                        # so the awake set is only touched when the node
                        # actually stays awake (halt()/wake() calls inside
                        # the handler keep the set consistent on their own).
                        ctx.halted = False
                        on_round(ctx, inbox)
                        if not ctx.halted:
                            awake.add(v)
                    else:
                        on_round(ctx, inbox)
                    inbox.clear()
                else:
                    on_round(ctx, _NO_MESSAGES)
                ctx._sent_this_round.clear()

        metrics.messages_sent = (
            metrics.messages_delivered + self._pending_backlog() - backlog_start
        )
        if express and pending_receivers:
            # Count-at-send ran ahead of the legacy count-at-delivery
            # semantics; retract the messages still awaiting their flip.
            out_links = self._out_links
            for v in pending_receivers:
                for m in self._pending[v]:
                    edge_counts[out_links[m.sender][v] >> 1] -= 1
        self._structures_clean = True
        metrics.terminated = False
        if raise_on_limit:
            raise RoundLimitExceeded(
                f"algorithm {algorithm.name!r} did not terminate within {max_rounds} rounds",
                metrics=metrics,
                last_active_set=len(awake),
            )
        return metrics

    # ------------------------------------------------------------------
    # bulk execution (vectorized whole-round kernels; see repro.congest.bulk)
    # ------------------------------------------------------------------
    def _warn_bulk_fallback(self, algorithm, reason: str) -> None:
        if reason in self._bulk_fallback_warned:
            return
        self._bulk_fallback_warned.add(reason)
        warnings.warn(
            f"bulk-capable algorithm {algorithm.name!r} falling back to the "
            f"per-node path ({reason})",
            BulkFallbackWarning,
            stacklevel=4,
        )

    def _try_bulk(self, algorithm, max_rounds: int, raise_on_limit: bool):
        """Attempt a vectorized run; ``None`` means use the per-node path.

        Declined configurations (retry mode) warn once per network so the
        de-optimization is observable; dirty queues and kernel build guards
        (packed-key overflow) fall back silently — they are per-run
        conditions, not configuration mistakes.
        """
        if not algorithm.bulk_supported():
            if getattr(algorithm, "retry", None) is not None:
                self._warn_bulk_fallback(algorithm, "retry")
            return None
        if self._active or self._pending_receivers or not self._structures_clean:
            return None
        kernel = algorithm.bulk_kernel(self)
        if kernel is None:
            return None
        return self._run_bulk(algorithm, kernel, max_rounds, raise_on_limit)

    def _run_bulk(self, algorithm, kernel, max_rounds: int, raise_on_limit: bool) -> RunMetrics:
        """Drive a bulk kernel round by round.

        The kernel owns all round work; this driver only reproduces the
        per-node loop's round accounting: round 0 is ``start`` (the
        per-node ``initialize``), each event round executes via
        ``bulk_round``, silent stretches are skipped (the per-node engine
        charges them without executing), and a kernel reporting no further
        events terminates with the round count of the last event.
        """
        metrics = RunMetrics()
        self._ran = True
        kernel.start(max_rounds)
        rnd = 0
        terminated = False
        while True:
            nxt = kernel.next_round(rnd)
            if nxt is None:
                terminated = rnd < max_rounds
                break
            if nxt > max_rounds:
                rnd = max_rounds
                break
            rnd = nxt
            kernel.bulk_round(rnd)
            if rnd >= max_rounds:
                break
        kernel.finish(self, metrics, terminated, rnd)
        metrics.rounds = rnd
        metrics.terminated = terminated
        # Queues were never touched, so the network stays cheap-resettable;
        # only the per-link maxima the kernel wrote back need clearing then.
        self._structures_clean = True
        if not terminated and raise_on_limit:
            raise RoundLimitExceeded(
                f"algorithm {algorithm.name!r} did not terminate within {max_rounds} rounds",
                metrics=metrics,
                last_active_set=kernel.awake_at_cutoff(rnd),
            )
        return metrics

    # ------------------------------------------------------------------
    # adversarial execution
    # ------------------------------------------------------------------
    def _run_adversarial(
        self,
        algorithm: DistributedAlgorithm,
        adversary,
        *,
        max_rounds: int,
        raise_on_limit: bool,
        reset: bool,
    ) -> RunMetrics:
        """The fault-injected twin of :meth:`run`.

        Kept as a separate loop so the fault-free hot path stays untouched.
        Differences from :meth:`run`:

        * always the metered ring path — the express lane has no per-message
          delivery point for the adversary to interpose on (the oracle suite
          pins express ≡ ring metrics, so a no-fault adversary remains
          bit-identical to an adversary-free run);
        * ``adversary.begin_round`` is consulted every executed round and
          its crash/recover schedule is merged into the silent-stretch
          fast-forward, so a jump never skips over a scheduled fault;
        * hitting ``max_rounds`` raises :class:`PartialRunError` carrying
          the partial metrics.
        """
        if getattr(algorithm, "bulk_capable", False) and algorithm.bulk_supported():
            # A bulk-eligible configuration takes the per-node path under an
            # adversary (the delivery interposition point is per-message).
            self._warn_bulk_fallback(algorithm, "adversary")
        if reset and self._ran:
            self.reset()
        metrics = RunMetrics()
        metrics._edge_counts = [0] * self._csr.num_edges
        metrics._edge_list = self._csr.edge_list
        backlog_start = self._pending_backlog()
        self._ran = True
        self._structures_clean = False
        if self._pending_receivers:
            self._flush_pending_to_rings()

        adversary.reset(self)
        event_rounds: tuple = tuple(adversary.event_rounds())
        num_events = len(event_rounds)
        event_pos = 0

        nodes = self._node_list
        edge_counts = metrics._edge_counts
        timers: tuple = getattr(algorithm, "wake_at_rounds", ()) or ()
        num_timers = len(timers)
        timer_pos = 0
        if num_timers:
            algorithm.current_round = 0
        timer_probe = getattr(algorithm, "pending_timer_work", None)

        crashed: set[int] = set()
        awake = self._awake
        inbox_of = self._inbox_of

        # Round-0 events: nodes crashed "before the run" never initialize.
        events = adversary.begin_round(0)
        if events:
            self._apply_fault_events(events, algorithm, crashed, metrics)
        while event_pos < num_events and event_rounds[event_pos] <= 0:
            event_pos += 1

        for ctx in nodes:
            ctx._express_pending = None
            ctx._edge_counts = edge_counts
            if ctx.node_id in crashed:
                continue
            algorithm.initialize(ctx)
            ctx._sent_this_round.clear()

        composed = isinstance(algorithm, ComposedAlgorithm)
        on_round = algorithm.on_round
        pending_receivers = self._pending_receivers
        num_nodes = len(nodes)

        while metrics.rounds < max_rounds:
            if not self._active and not pending_receivers and not awake:
                timers_needed = timer_pos < num_timers
                if timers_needed and timer_probe is not None and not timer_probe():
                    timers_needed = False
                if timers_needed:
                    # Jump to the next forced round: the earlier of the next
                    # algorithm timer and the next scheduled fault event.
                    forced = timers[timer_pos]
                    if event_pos < num_events and event_rounds[event_pos] < forced:
                        forced = event_rounds[event_pos]
                    jump = forced - 1
                    if jump > metrics.rounds:
                        metrics.rounds = jump if jump < max_rounds else max_rounds
                        if metrics.rounds >= max_rounds:
                            continue
                else:
                    if composed:
                        advanced = False
                        for ctx in nodes:
                            if ctx.node_id in crashed:
                                continue
                            if algorithm.advance_stage(ctx):
                                advanced = True
                            ctx._sent_this_round.clear()
                        if advanced:
                            timers = algorithm.rebase_timers(metrics.rounds)
                            num_timers = len(timers)
                            timer_pos = 0
                            if num_timers:
                                algorithm.current_round = metrics.rounds
                            continue
                    if event_pos < num_events:
                        # Quiescent, but faults are still scheduled — a
                        # recovery can re-inject work and a crash wipes
                        # observable state, so the schedule must play out.
                        jump = event_rounds[event_pos] - 1
                        if jump > metrics.rounds:
                            metrics.rounds = jump if jump < max_rounds else max_rounds
                            if metrics.rounds >= max_rounds:
                                continue
                    else:
                        metrics.terminated = True
                        metrics.messages_sent = (
                            metrics.messages_delivered
                            + metrics.messages_dropped
                            - metrics.messages_duplicated
                            - backlog_start
                        )
                        self._structures_clean = True
                        return metrics

            metrics.rounds += 1
            round_no = metrics.rounds
            timer_fired = False
            if timer_pos < num_timers:
                algorithm.current_round = round_no
                if timers[timer_pos] <= round_no:
                    timer_fired = True
                    timer_pos += 1
                    while timer_pos < num_timers and timers[timer_pos] <= round_no:
                        timer_pos += 1
            elif num_timers:
                algorithm.current_round = round_no
            while event_pos < num_events and event_rounds[event_pos] <= round_no:
                event_pos += 1
            events = adversary.begin_round(round_no)
            if events:
                self._apply_fault_events(events, algorithm, crashed, metrics)

            receivers = self._deliver_adversarial(metrics, adversary, round_no, crashed)

            if timer_fired:
                to_run = (
                    range(num_nodes)
                    if not crashed
                    else sorted(set(range(num_nodes)) - crashed)
                )
            elif not awake:
                to_run = sorted(receivers)
            elif receivers:
                to_run = sorted(awake.union(receivers))
            else:
                to_run = sorted(awake)
            for v in to_run:
                ctx = nodes[v]
                inbox = inbox_of[v]
                if inbox:
                    if ctx.halted:
                        ctx.halted = False
                        on_round(ctx, inbox)
                        if not ctx.halted:
                            awake.add(v)
                    else:
                        on_round(ctx, inbox)
                    inbox.clear()
                else:
                    on_round(ctx, _NO_MESSAGES)
                ctx._sent_this_round.clear()

        metrics.messages_sent = (
            metrics.messages_delivered
            + metrics.messages_dropped
            - metrics.messages_duplicated
            + self._pending_backlog()
            - backlog_start
        )
        self._structures_clean = True
        metrics.terminated = False
        if raise_on_limit:
            raise PartialRunError(
                f"algorithm {algorithm.name!r} stalled under adversary "
                f"{adversary.name!r}: no quiescence within {max_rounds} rounds",
                metrics=metrics,
                last_active_set=len(awake),
            )
        return metrics

    def _apply_fault_events(self, events, algorithm, crashed: set, metrics: RunMetrics) -> None:
        """Apply one round's crash/recover events from the adversary."""
        nodes = self._node_list
        awake = self._awake
        inbox_of = self._inbox_of
        for kind, v in events:
            if kind == "crash":
                if v in crashed:
                    continue
                crashed.add(v)
                ctx = nodes[v]
                # The hook runs before the wipe so fleet algorithms can
                # retract this node's entries from their shared bookkeeping.
                algorithm.on_crash(ctx)
                ctx.state = {}
                ctx._payload_ok = None
                ctx.halted = True
                awake.discard(v)
                inbox_of[v].clear()
                metrics.crashes += 1
            elif kind == "recover":
                if v not in crashed:
                    continue
                crashed.discard(v)
                ctx = nodes[v]
                ctx.state = {}
                ctx._payload_ok = None
                ctx.halted = False
                awake.add(v)
                algorithm.on_recover(ctx)
                ctx._sent_this_round.clear()
                metrics.recoveries += 1
            else:
                raise ValueError(f"unknown adversary event kind {kind!r}")

    def _deliver_adversarial(
        self, metrics: RunMetrics, adversary, round_no: int, crashed: set
    ) -> list[int]:
        """Ring delivery with the adversary interposed on every message.

        Mirrors :meth:`_deliver` message for message: a no-fault adversary
        yields identical inbox contents, ordering and metrics.  ``DROP``
        consumes the message (it occupied the link); ``DUPLICATE`` delivers
        two copies in the same round; ``HOLD`` freezes the link's queue for
        this round (FIFO preserved); messages to crashed nodes are
        discarded and counted as dropped.
        """
        active = self._active
        receivers: list[int] = []
        if not active:
            return receivers
        bandwidth = self.bandwidth
        queues = self._queues
        heads = self._heads
        receiver_of = self._receiver_of
        link_max = self._link_max_backlog
        edge_counts = metrics._edge_counts
        inbox_of = self._inbox_of
        is_active = self._is_active
        on_deliver = adversary.on_deliver
        max_backlog = metrics.max_link_backlog
        still_active: list[int] = []
        delivered = 0
        dropped = 0
        duplicated = 0
        for link in active:
            buf = queues[link]
            head = heads[link]
            size = len(buf)
            receiver = receiver_of[link]
            edge = link >> 1
            receiver_crashed = receiver in crashed
            inbox = inbox_of[receiver]
            had_mail = bool(inbox)
            quota = bandwidth
            while quota and head < size:
                msg = buf[head]
                if receiver_crashed:
                    head += 1
                    quota -= 1
                    edge_counts[edge] += 1
                    dropped += 1
                    continue
                action = on_deliver(link, msg, round_no)
                if action == 3:  # HOLD: freeze this link for the round
                    break
                head += 1
                quota -= 1
                edge_counts[edge] += 1
                if action == 1:  # DROP
                    dropped += 1
                    continue
                if action == 2:  # DUPLICATE
                    inbox.append(msg)
                    edge_counts[edge] += 1
                    delivered += 1
                    duplicated += 1
                inbox.append(msg)
                delivered += 1
            if head >= size:
                buf.clear()
                if heads[link]:
                    heads[link] = 0
                is_active[link] = 0
            else:
                if head > 64 and head * 2 >= size:
                    del buf[:head]
                    head = 0
                heads[link] = head
                still_active.append(link)
            if inbox and not had_mail:
                receivers.append(receiver)
            lm = link_max[link]
            if lm > max_backlog:
                max_backlog = lm
        if (delivered or dropped) and not max_backlog:
            # Senders only record backlogs above 1; any consumed message
            # implies a backlog of at least 1 was observed.
            max_backlog = 1
        metrics.max_link_backlog = max_backlog
        metrics.messages_delivered += delivered
        metrics.messages_dropped += dropped
        metrics.messages_duplicated += duplicated
        active[:] = still_active
        return receivers

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pending_backlog(self) -> int:
        """Messages queued but undelivered (O(active links + pending nodes))."""
        queues = self._queues
        heads = self._heads
        total = sum(len(queues[link]) - heads[link] for link in self._active)
        if self._pending_receivers:
            pending = self._pending
            total += sum(len(pending[v]) for v in self._pending_receivers)
        return total

    def _flush_pending_to_rings(self) -> None:
        """Move leftover express traffic onto the ring buffers.

        Only needed when a run is cut off by ``max_rounds`` with express
        messages still in flight and a multi-channel algorithm follows with
        ``reset=False``; the ring path then delivers them in FIFO order.
        """
        out_links = self._out_links
        queues = self._queues
        heads = self._heads
        link_max = self._link_max_backlog
        is_active = self._is_active
        active = self._active
        pending = self._pending
        for v in self._pending_receivers:
            plist = pending[v]
            for m in plist:
                link = out_links[m.sender][v]
                buf = queues[link]
                buf.append(m)
                backlog = len(buf) - heads[link]
                if backlog > 1 and backlog > link_max[link]:
                    link_max[link] = backlog
                if not is_active[link]:
                    is_active[link] = 1
                    active.append(link)
            plist.clear()
        self._pending_receivers.clear()

    def _deliver(self, metrics: RunMetrics) -> list[int]:
        """Deliver one round of traffic into the pooled inboxes.

        Returns the ids of the nodes that received at least one message.
        Only links on the active worklist are visited.
        """
        active = self._active
        receivers: list[int] = []
        if not active:
            return receivers
        bandwidth = self.bandwidth
        queues = self._queues
        heads = self._heads
        receiver_of = self._receiver_of
        link_max = self._link_max_backlog
        edge_counts = metrics._edge_counts
        inbox_of = self._inbox_of
        is_active = self._is_active
        max_backlog = metrics.max_link_backlog
        still_active: list[int] = []
        delivered = 0
        for link in active:
            buf = queues[link]
            head = heads[link]
            size = len(buf)
            receiver = receiver_of[link]
            inbox = inbox_of[receiver]
            if not inbox:
                receivers.append(receiver)
            backlog = size - head
            if backlog <= bandwidth:
                # Common case: the whole queue fits in one round (with unit
                # bandwidth this is the only uncongested shape).
                if backlog == 1:
                    inbox.append(buf[head])
                else:
                    inbox.extend(buf[head:] if head else buf)
                take = backlog
                buf.clear()
                if head:
                    heads[link] = 0
                is_active[link] = 0
            else:
                take = bandwidth
                if take == 1:
                    inbox.append(buf[head])
                else:
                    inbox.extend(buf[head:head + take])
                head += take
                if head > 64 and head * 2 >= size:
                    del buf[:head]
                    head = 0
                heads[link] = head
                still_active.append(link)

            delivered += take
            edge_counts[link >> 1] += take
            lm = link_max[link]
            if lm > max_backlog:
                max_backlog = lm
        if not max_backlog:
            # Senders only record backlogs above 1; any delivery implies a
            # backlog of at least 1 was observed.
            max_backlog = 1
        metrics.max_link_backlog = max_backlog
        metrics.messages_delivered += delivered
        # In-place so the wired NodeContexts' cached reference stays valid.
        active[:] = still_active
        return receivers
