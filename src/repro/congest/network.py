"""The synchronous CONGEST round engine.

The :class:`Network` wraps a :class:`~repro.graphs.graph.Graph` and executes
a :class:`~repro.congest.algorithm.DistributedAlgorithm` in synchronous
rounds:

1. every directed link delivers up to ``bandwidth`` queued messages;
2. every node that is active (not halted, or just received a message) runs
   its ``on_round`` handler;
3. the messages the handlers produced are enqueued on their links for
   delivery in the next round.

Messages beyond a link's per-round bandwidth are *queued*, so an algorithm
that overloads a link simply takes more rounds — exactly the penalty the
CONGEST model charges.  The engine records the metrics the paper's bounds
talk about: total rounds to quiescence, total messages, the maximum backlog
observed on any link (a per-link congestion proxy) and per-edge message
counts.

Batched delivery engine
-----------------------
Links are indexed by dense *directed link ids* derived from the graph's CSR
snapshot: the undirected edge with id ``e`` (canonical ``(u, v)``, ``u < v``)
owns link ``2e`` for the ``u -> v`` direction and ``2e + 1`` for ``v -> u``.
Per-link queues are flat ring-buffered lists drained ``bandwidth`` at a time,
per-edge message counters live in one ``array('l')`` indexed by edge id
(exposed through the lazily materialized
:attr:`RunMetrics.per_edge_messages` dict property), and each round only
visits the links that actually have pending traffic (an active-link
worklist) instead of scanning every directed link.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Optional

from ..graphs.graph import Graph
from .algorithm import ComposedAlgorithm, DistributedAlgorithm
from .message import BandwidthExceededError, Message
from .node import NodeContext


class RoundLimitExceeded(RuntimeError):
    """Raised when an algorithm fails to reach quiescence within ``max_rounds``."""


@dataclass
class RunMetrics:
    """Metrics of one simulation run.

    Attributes:
        rounds: number of synchronous rounds until global quiescence.
        messages_sent: total messages handed to the network by nodes.
        messages_delivered: total messages delivered to receivers.
        max_link_backlog: largest queue length observed on any directed link.
        terminated: ``True`` if the run reached quiescence (as opposed to
            being stopped by ``max_rounds`` with ``raise_on_limit=False``).
    """

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    max_link_backlog: int = 0
    terminated: bool = False
    _edge_counts: Optional[array] = field(default=None, repr=False, compare=False)
    _edge_list: Optional[list] = field(default=None, repr=False, compare=False)

    @property
    def per_edge_messages(self) -> dict[tuple[int, int], int]:
        """Messages that crossed each undirected edge (both directions summed).

        Keyed by canonical edge tuple and materialized lazily from the flat
        edge-id counter array; edges that carried no message are omitted.
        """
        if self._edge_counts is None or self._edge_list is None:
            return {}
        edge_list = self._edge_list
        return {edge_list[e]: c for e, c in enumerate(self._edge_counts) if c}

    @property
    def max_edge_messages(self) -> int:
        """Largest number of messages carried by any single undirected edge."""
        if self._edge_counts is None or not self._edge_counts:
            return 0
        return max(self._edge_counts)


class Network:
    """A CONGEST network over a given communication graph.

    Args:
        graph: the communication topology.
        bandwidth: messages a directed link may deliver per round (1 for the
            standard model; larger values model CONGEST with B-bit messages,
            used by a few tests to isolate algorithmic from congestion
            effects).
        strict_bandwidth: if ``True``, overloading a link raises
            :class:`~repro.congest.message.BandwidthExceededError` instead of
            queueing.
    """

    def __init__(self, graph: Graph, *, bandwidth: int = 1, strict_bandwidth: bool = False) -> None:
        if bandwidth < 1:
            raise ValueError("bandwidth must be at least 1")
        self.graph = graph
        self.bandwidth = bandwidth
        self.strict_bandwidth = strict_bandwidth
        self.nodes: dict[int, NodeContext] = {}
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset all node state and link queues (a fresh network)."""
        self.nodes = {
            v: NodeContext(node_id=v, neighbors=tuple(sorted(self.graph.neighbors(v))))
            for v in self.graph.vertices()
        }
        csr = self.graph.csr()
        self._csr = csr
        num_links = 2 * csr.num_edges
        # Directed link 2e carries lo -> hi of canonical edge e; 2e + 1 the
        # reverse.  _link_of resolves a (sender, receiver) pair to its id.
        link_of: dict[tuple[int, int], int] = {}
        receiver_of = array("l", [0]) * num_links
        for eid, (u, v) in enumerate(csr.edge_list):
            link_of[(u, v)] = 2 * eid
            link_of[(v, u)] = 2 * eid + 1
            receiver_of[2 * eid] = v
            receiver_of[2 * eid + 1] = u
        self._link_of = link_of
        self._receiver_of = receiver_of
        self._queues: list[list[Message]] = [[] for _ in range(num_links)]
        self._heads = array("l", [0]) * num_links
        self._link_max_backlog = array("l", [0]) * num_links
        self._active: list[int] = []
        self._is_active = bytearray(num_links)

    def node(self, v: int) -> NodeContext:
        """Return the :class:`NodeContext` of node ``v`` (for inspecting outputs)."""
        return self.nodes[v]

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: DistributedAlgorithm,
        *,
        max_rounds: int = 100_000,
        raise_on_limit: bool = True,
        reset: bool = True,
    ) -> RunMetrics:
        """Execute ``algorithm`` until global quiescence.

        Global quiescence means every node reports ``finished`` and no
        message is queued on any link.  For :class:`ComposedAlgorithm` the
        engine advances all nodes to the next stage whenever the current
        stage is quiescent.

        Args:
            algorithm: the algorithm to run.
            max_rounds: safety limit on the number of rounds.
            raise_on_limit: raise :class:`RoundLimitExceeded` when the limit
                is hit (otherwise return metrics with ``terminated=False``).
            reset: start from a clean network state (set to ``False`` to run
                a follow-up algorithm that reads earlier algorithms' state).

        Returns:
            The :class:`RunMetrics` of the run.
        """
        if reset:
            self.reset()
        metrics = RunMetrics()
        metrics._edge_counts = array("l", [0]) * self._csr.num_edges
        metrics._edge_list = self._csr.edge_list
        for ctx in self.nodes.values():
            algorithm.initialize(ctx)
        self._collect_outgoing(metrics)

        while metrics.rounds < max_rounds:
            if self._is_quiescent():
                if isinstance(algorithm, ComposedAlgorithm):
                    advanced = False
                    for ctx in self.nodes.values():
                        advanced = algorithm.advance_stage(ctx) or advanced
                    if advanced:
                        self._collect_outgoing(metrics)
                        continue
                metrics.terminated = True
                return metrics

            metrics.rounds += 1
            inboxes = self._deliver(metrics)
            for v, ctx in self.nodes.items():
                incoming = inboxes.get(v)
                if incoming:
                    ctx.wake()
                    algorithm.on_round(ctx, incoming)
                elif not ctx.halted:
                    algorithm.on_round(ctx, [])
            self._collect_outgoing(metrics)

        if raise_on_limit:
            raise RoundLimitExceeded(
                f"algorithm {algorithm.name!r} did not terminate within {max_rounds} rounds"
            )
        metrics.terminated = False
        return metrics

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _deliver(self, metrics: RunMetrics) -> dict[int, list[Message]]:
        inboxes: dict[int, list[Message]] = {}
        active = self._active
        if not active:
            return inboxes
        bandwidth = self.bandwidth
        queues = self._queues
        heads = self._heads
        receiver_of = self._receiver_of
        link_max = self._link_max_backlog
        edge_counts = metrics._edge_counts
        still_active: list[int] = []
        delivered = 0
        for link in active:
            buf = queues[link]
            head = heads[link]
            take = min(bandwidth, len(buf) - head)
            batch = buf[head:head + take]
            head += take
            if head >= len(buf):
                buf.clear()
                head = 0
                self._is_active[link] = 0
            else:
                if head > 64 and head * 2 >= len(buf):
                    del buf[:head]
                    head = 0
                still_active.append(link)
            heads[link] = head

            receiver = receiver_of[link]
            inbox = inboxes.get(receiver)
            if inbox is None:
                inboxes[receiver] = batch
            else:
                inbox.extend(batch)
            delivered += take
            edge_counts[link >> 1] += take
            if link_max[link] > metrics.max_link_backlog:
                metrics.max_link_backlog = link_max[link]
        metrics.messages_delivered += delivered
        self._active = still_active
        return inboxes

    def _collect_outgoing(self, metrics: RunMetrics) -> None:
        link_of = self._link_of
        queues = self._queues
        heads = self._heads
        link_max = self._link_max_backlog
        is_active = self._is_active
        active = self._active
        strict = self.strict_bandwidth
        bandwidth = self.bandwidth
        sent = 0
        for ctx in self.nodes.values():
            if not ctx._outbox:
                ctx._sent_this_round.clear()
                continue
            for message in ctx._collect_outbox():
                link = link_of.get((message.sender, message.receiver))
                if link is None:
                    raise ValueError(
                        f"message {message} uses non-existent link "
                        f"({message.sender}, {message.receiver})"
                    )
                buf = queues[link]
                backlog = len(buf) - heads[link]
                if strict and backlog >= bandwidth:
                    raise BandwidthExceededError(
                        f"link {message.sender}->{message.receiver} exceeded capacity "
                        f"{bandwidth} per round"
                    )
                buf.append(message)
                backlog += 1
                if backlog > link_max[link]:
                    link_max[link] = backlog
                if not is_active[link]:
                    is_active[link] = 1
                    active.append(link)
                sent += 1
        metrics.messages_sent += sent

    def _is_quiescent(self) -> bool:
        # Quiescence is a structural property: no message is in flight and
        # every node has locally halted.  (Algorithms signal "nothing left to
        # do" by halting; halted nodes are woken again by incoming messages.)
        if self._active:
            return False
        return all(ctx.halted for ctx in self.nodes.values())
