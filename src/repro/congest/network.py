"""The synchronous CONGEST round engine.

The :class:`Network` wraps a :class:`~repro.graphs.graph.Graph` and executes
a :class:`~repro.congest.algorithm.DistributedAlgorithm` in synchronous
rounds:

1. every directed link delivers up to ``bandwidth`` queued messages;
2. every node that is active (not halted, or just received a message) runs
   its ``on_round`` handler;
3. the messages the handlers produced are enqueued on their links for
   delivery in the next round.

Messages beyond a link's per-round bandwidth are *queued*, so an algorithm
that overloads a link simply takes more rounds — exactly the penalty the
CONGEST model charges.  The engine records the metrics the paper's bounds
talk about: total rounds to quiescence, total messages, the maximum backlog
observed on any link (a per-link congestion proxy) and per-edge message
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..graphs.graph import Graph, edge_key
from .algorithm import ComposedAlgorithm, DistributedAlgorithm
from .message import LinkQueue, Message
from .node import NodeContext


class RoundLimitExceeded(RuntimeError):
    """Raised when an algorithm fails to reach quiescence within ``max_rounds``."""


@dataclass
class RunMetrics:
    """Metrics of one simulation run.

    Attributes:
        rounds: number of synchronous rounds until global quiescence.
        messages_sent: total messages handed to the network by nodes.
        messages_delivered: total messages delivered to receivers.
        max_link_backlog: largest queue length observed on any directed link.
        per_edge_messages: messages that crossed each undirected edge (both
            directions summed), keyed by canonical edge tuple.
        terminated: ``True`` if the run reached quiescence (as opposed to
            being stopped by ``max_rounds`` with ``raise_on_limit=False``).
    """

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    max_link_backlog: int = 0
    per_edge_messages: dict[tuple[int, int], int] = field(default_factory=dict)
    terminated: bool = False

    @property
    def max_edge_messages(self) -> int:
        """Largest number of messages carried by any single undirected edge."""
        return max(self.per_edge_messages.values(), default=0)


class Network:
    """A CONGEST network over a given communication graph.

    Args:
        graph: the communication topology.
        bandwidth: messages a directed link may deliver per round (1 for the
            standard model; larger values model CONGEST with B-bit messages,
            used by a few tests to isolate algorithmic from congestion
            effects).
        strict_bandwidth: if ``True``, overloading a link raises
            :class:`~repro.congest.message.BandwidthExceededError` instead of
            queueing.
    """

    def __init__(self, graph: Graph, *, bandwidth: int = 1, strict_bandwidth: bool = False) -> None:
        if bandwidth < 1:
            raise ValueError("bandwidth must be at least 1")
        self.graph = graph
        self.bandwidth = bandwidth
        self.strict_bandwidth = strict_bandwidth
        self.nodes: dict[int, NodeContext] = {}
        self._links: dict[tuple[int, int], LinkQueue] = {}
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset all node state and link queues (a fresh network)."""
        self.nodes = {
            v: NodeContext(node_id=v, neighbors=tuple(sorted(self.graph.neighbors(v))))
            for v in self.graph.vertices()
        }
        self._links = {}
        for u, v in self.graph.edges():
            self._links[(u, v)] = LinkQueue(capacity_per_round=self.bandwidth)
            self._links[(v, u)] = LinkQueue(capacity_per_round=self.bandwidth)

    def node(self, v: int) -> NodeContext:
        """Return the :class:`NodeContext` of node ``v`` (for inspecting outputs)."""
        return self.nodes[v]

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: DistributedAlgorithm,
        *,
        max_rounds: int = 100_000,
        raise_on_limit: bool = True,
        reset: bool = True,
    ) -> RunMetrics:
        """Execute ``algorithm`` until global quiescence.

        Global quiescence means every node reports ``finished`` and no
        message is queued on any link.  For :class:`ComposedAlgorithm` the
        engine advances all nodes to the next stage whenever the current
        stage is quiescent.

        Args:
            algorithm: the algorithm to run.
            max_rounds: safety limit on the number of rounds.
            raise_on_limit: raise :class:`RoundLimitExceeded` when the limit
                is hit (otherwise return metrics with ``terminated=False``).
            reset: start from a clean network state (set to ``False`` to run
                a follow-up algorithm that reads earlier algorithms' state).

        Returns:
            The :class:`RunMetrics` of the run.
        """
        if reset:
            self.reset()
        metrics = RunMetrics()
        for ctx in self.nodes.values():
            algorithm.initialize(ctx)
        self._collect_outgoing(metrics)

        while metrics.rounds < max_rounds:
            if self._is_quiescent(algorithm):
                if isinstance(algorithm, ComposedAlgorithm):
                    advanced = False
                    for ctx in self.nodes.values():
                        advanced = algorithm.advance_stage(ctx) or advanced
                    if advanced:
                        self._collect_outgoing(metrics)
                        continue
                metrics.terminated = True
                return metrics

            metrics.rounds += 1
            inboxes = self._deliver(metrics)
            for v, ctx in self.nodes.items():
                incoming = inboxes.get(v, [])
                if incoming:
                    ctx.wake()
                if incoming or not ctx.halted:
                    algorithm.on_round(ctx, incoming)
            self._collect_outgoing(metrics)

        if raise_on_limit:
            raise RoundLimitExceeded(
                f"algorithm {algorithm.name!r} did not terminate within {max_rounds} rounds"
            )
        metrics.terminated = False
        return metrics

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _deliver(self, metrics: RunMetrics) -> dict[int, list[Message]]:
        inboxes: dict[int, list[Message]] = {}
        for (u, v), queue in self._links.items():
            if not queue.pending:
                continue
            for message in queue.drain():
                inboxes.setdefault(v, []).append(message)
                metrics.messages_delivered += 1
                key = edge_key(u, v)
                metrics.per_edge_messages[key] = metrics.per_edge_messages.get(key, 0) + 1
            if queue.max_backlog > metrics.max_link_backlog:
                metrics.max_link_backlog = queue.max_backlog
        return inboxes

    def _collect_outgoing(self, metrics: RunMetrics) -> None:
        for ctx in self.nodes.values():
            for message in ctx._collect_outbox():
                link = self._links.get((message.sender, message.receiver))
                if link is None:
                    raise ValueError(
                        f"message {message} uses non-existent link "
                        f"({message.sender}, {message.receiver})"
                    )
                link.enqueue(message, strict=self.strict_bandwidth)
                metrics.messages_sent += 1

    def _is_quiescent(self, algorithm: DistributedAlgorithm) -> bool:
        # Quiescence is a structural property: no message is in flight and
        # every node has locally halted.  (Algorithms signal "nothing left to
        # do" by halting; halted nodes are woken again by incoming messages.)
        if any(link.pending for link in self._links.values()):
            return False
        return all(ctx.halted for ctx in self.nodes.values())
