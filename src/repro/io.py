"""Serialization of graphs, partitions and shortcuts.

Experiments that take minutes to build (large sampled shortcuts, generated
lower-bound instances) are worth persisting; this module provides a small,
dependency-free JSON round-trip for the three core object kinds:

* :class:`~repro.graphs.graph.Graph` / :class:`~repro.graphs.graph.WeightedGraph`,
* :class:`~repro.shortcuts.partition.Partition`,
* :class:`~repro.shortcuts.shortcut.Shortcut`.

The on-disk format is deliberately plain (lists of edges / parts keyed by
name) so the files remain readable and diffable, and the loaders validate
the structural invariants on the way in — a file edited by hand that breaks
disjointness or references a non-edge is rejected with a clear error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from .graphs.graph import Graph, WeightedGraph
from .shortcuts.partition import Partition
from .shortcuts.shortcut import Shortcut

PathLike = Union[str, Path]

#: Format identifier written into every file, checked on load.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------
def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """Return a JSON-serialisable representation of ``graph``.

    Weighted graphs store ``[u, v, w]`` triples, unweighted graphs ``[u, v]``
    pairs; the ``kind`` field records which.
    """
    if isinstance(graph, WeightedGraph):
        return {
            "format_version": FORMAT_VERSION,
            "kind": "weighted_graph",
            "num_vertices": graph.num_vertices,
            "edges": [[u, v, w] for u, v, w in graph.weighted_edges()],
        }
    return {
        "format_version": FORMAT_VERSION,
        "kind": "graph",
        "num_vertices": graph.num_vertices,
        "edges": [[u, v] for u, v in graph.edges()],
    }


def graph_from_dict(data: dict[str, Any]) -> Graph:
    """Reconstruct a graph from :func:`graph_to_dict` output.

    Raises:
        ValueError: on unknown kinds, bad version or malformed edges.
    """
    _check_version(data)
    kind = data.get("kind")
    n = data.get("num_vertices")
    if not isinstance(n, int) or n < 0:
        raise ValueError("num_vertices must be a non-negative integer")
    edges = data.get("edges", [])
    if kind == "graph":
        graph = Graph(n)
        for entry in edges:
            if len(entry) != 2:
                raise ValueError(f"unweighted edge entry {entry!r} must have 2 fields")
            graph.add_edge(int(entry[0]), int(entry[1]))
        return graph
    if kind == "weighted_graph":
        wgraph = WeightedGraph(n)
        for entry in edges:
            if len(entry) != 3:
                raise ValueError(f"weighted edge entry {entry!r} must have 3 fields")
            wgraph.add_weighted_edge(int(entry[0]), int(entry[1]), float(entry[2]))
        return wgraph
    raise ValueError(f"unknown graph kind {kind!r}")


# ----------------------------------------------------------------------
# partitions and shortcuts
# ----------------------------------------------------------------------
def partition_to_dict(partition: Partition) -> dict[str, Any]:
    """Return a JSON-serialisable representation of ``partition`` (graph included)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "partition",
        "graph": graph_to_dict(partition.graph),
        "parts": [sorted(part) for part in partition.parts],
    }


def partition_from_dict(data: dict[str, Any]) -> Partition:
    """Reconstruct (and re-validate) a partition from :func:`partition_to_dict` output."""
    _check_version(data)
    if data.get("kind") != "partition":
        raise ValueError(f"expected a partition document, got kind {data.get('kind')!r}")
    graph = graph_from_dict(data["graph"])
    parts = [set(map(int, part)) for part in data.get("parts", [])]
    return Partition(graph, parts, validate=True)


def shortcut_to_dict(shortcut: Shortcut) -> dict[str, Any]:
    """Return a JSON-serialisable representation of ``shortcut`` (partition included)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "shortcut",
        "partition": partition_to_dict(shortcut.partition),
        "subgraphs": [
            sorted([list(edge) for edge in shortcut.subgraph_edges(i)])
            for i in range(shortcut.num_parts)
        ],
    }


def shortcut_from_dict(data: dict[str, Any]) -> Shortcut:
    """Reconstruct (and re-validate) a shortcut from :func:`shortcut_to_dict` output."""
    _check_version(data)
    if data.get("kind") != "shortcut":
        raise ValueError(f"expected a shortcut document, got kind {data.get('kind')!r}")
    partition = partition_from_dict(data["partition"])
    subgraphs = [
        [(int(u), int(v)) for u, v in part_edges]
        for part_edges in data.get("subgraphs", [])
    ]
    return Shortcut(partition, subgraphs, validate_edges=True)


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------
def save_json(obj: Union[Graph, Partition, Shortcut], path: PathLike) -> None:
    """Serialise a graph, partition or shortcut to a JSON file."""
    if isinstance(obj, Shortcut):
        data = shortcut_to_dict(obj)
    elif isinstance(obj, Partition):
        data = partition_to_dict(obj)
    elif isinstance(obj, Graph):
        data = graph_to_dict(obj)
    else:
        raise TypeError(f"cannot serialise objects of type {type(obj).__name__}")
    Path(path).write_text(json.dumps(data, indent=1))


def load_json(path: PathLike) -> Union[Graph, Partition, Shortcut]:
    """Load a graph, partition or shortcut from a JSON file (dispatch on ``kind``)."""
    data = json.loads(Path(path).read_text())
    kind = data.get("kind")
    if kind in ("graph", "weighted_graph"):
        return graph_from_dict(data)
    if kind == "partition":
        return partition_from_dict(data)
    if kind == "shortcut":
        return shortcut_from_dict(data)
    raise ValueError(f"unknown document kind {kind!r}")


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write a plain whitespace-separated edge list (``u v [w]`` per line)."""
    lines = [f"# vertices {graph.num_vertices}"]
    if isinstance(graph, WeightedGraph):
        lines += [f"{u} {v} {w}" for u, v, w in graph.weighted_edges()]
    else:
        lines += [f"{u} {v}" for u, v in graph.edges()]
    Path(path).write_text("\n".join(lines) + "\n")


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_edge_list`.

    Lines with three fields produce a :class:`WeightedGraph`; the vertex
    count comes from the header comment or, if absent, from the largest
    vertex id seen.

    Raises:
        ValueError: for malformed rows — wrong field count, non-numeric
            fields or mixed weighted/unweighted rows — naming the offending
            line.  (Arity is validated while reading, *before* the
            vertex-count inference touches any row: the seed version indexed
            ``row[1]`` during inference and leaked an ``IndexError`` for
            one-field rows.)
    """
    num_vertices = None
    rows: list[list[str]] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            fields = line[1:].split()
            if len(fields) == 2 and fields[0] == "vertices":
                num_vertices = int(fields[1])
            continue
        fields = line.split()
        if len(fields) not in (2, 3):
            raise ValueError(
                f"bad edge row on line {lineno}: {line!r} "
                f"(expected 'u v' or 'u v w', got {len(fields)} fields)"
            )
        try:
            int(fields[0])
            int(fields[1])
            if len(fields) == 3:
                float(fields[2])
        except ValueError:
            raise ValueError(
                f"non-numeric edge row on line {lineno}: {line!r}"
            ) from None
        rows.append(fields)
    if num_vertices is None:
        num_vertices = max((max(int(r[0]), int(r[1])) for r in rows), default=-1) + 1
    weighted = any(len(r) == 3 for r in rows)
    if weighted:
        wgraph = WeightedGraph(num_vertices)
        for r in rows:
            if len(r) != 3:
                raise ValueError(f"mixed weighted/unweighted rows near {' '.join(r)!r}")
            wgraph.add_weighted_edge(int(r[0]), int(r[1]), float(r[2]))
        return wgraph
    graph = Graph(num_vertices)
    for r in rows:
        graph.add_edge(int(r[0]), int(r[1]))
    return graph


def _check_version(data: dict[str, Any]) -> None:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format_version {version!r} (this library writes {FORMAT_VERSION})"
        )
