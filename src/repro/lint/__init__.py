"""``repro.lint`` — AST-based invariant checking for the reproduction.

The runtime test suite pins the repository's determinism guarantees
(parallel == serial sweeps, NullAdversary == clean engine, derived-seed
reproducibility) *after the fact*; this package holds them *statically*, so
the recurring class of bug that breaks them — an OS-entropy fallback buried
in library code, a mutated timer declaration, an unpicklable cell runner —
is caught at lint time instead of as a flaky sweep.

Entry points:

* ``repro lint [paths] [--rule ...] [--format text|json]`` (CLI);
* :func:`lint_paths` (library; the test suite drives it directly);
* configuration under ``[tool.repro.lint]`` in ``pyproject.toml``;
* inline suppressions: ``# repro: noqa[RPR001] — why it is safe here``.

See the README "Static analysis" section for the rule table.
"""

from .config import LintConfig, load_config, parse_lint_table
from .findings import ERROR, WARNING, Finding
from .registry import RULES, Rule
from .runner import (
    discover_files,
    format_json,
    format_rule_table,
    format_text,
    has_errors,
    lint_paths,
    select_rules,
)
from .suppress import SUPPRESSION_RULE_ID

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "LintConfig",
    "RULES",
    "Rule",
    "SUPPRESSION_RULE_ID",
    "discover_files",
    "format_json",
    "format_rule_table",
    "format_text",
    "has_errors",
    "lint_paths",
    "load_config",
    "parse_lint_table",
    "select_rules",
]
