"""Determinism rules (RPR001-RPR004).

The reproduction's headline guarantee is that every result is a pure
function of its seed: parallel sweeps are bit-identical to serial ones,
same-seed runs are bit-identical across processes.  Each rule here bans one
statically recognizable way that guarantee has been (or could be) broken:

* RPR001 — the exact bug PR 5 had to hand-hunt: ``ensure_rng(None)`` (or an
  argless ``random.Random()``) buried in library code silently draws OS
  entropy, so two same-seed runs diverge.  Seeds must be threaded from the
  caller; only files listed in ``seed-boundaries`` may open one.
* RPR002 — the module-level ``random.*`` functions share one hidden global
  stream (and ``random.seed`` reseeds it for everyone); library code must
  draw from an injected ``random.Random``.
* RPR003 — wall-clock and OS entropy reads (``time.time``, ``os.urandom``,
  ``uuid.uuid4``, ...) make output depend on when/where the code ran;
  they belong only in the timing harnesses under ``wallclock-exempt``
  paths (declared-nondeterministic columns such as E13's ``wall_s``
  carry a justifying ``# repro: noqa[RPR003]``).
* RPR004 — materializing a ``set`` into an ordered collection
  (``list(set(...))``, a comprehension over a set literal) leaks the
  hash-randomized iteration order into results; wrap in ``sorted`` or
  iterate a deterministic sequence.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext
from .findings import Finding
from .registry import SCOPE_LIBRARY, SCOPE_NON_WALLCLOCK, rule

#: Wall-clock / OS-entropy reads banned outside the timing harnesses.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "os.urandom", "uuid.uuid4", "uuid.uuid1",
})

#: ``random`` module attributes that are legitimate in library code: the
#: generator classes, not the hidden-global-stream functions.
RANDOM_CLASS_NAMES = frozenset({"Random", "SystemRandom"})

#: Callables that consume an iterable order-insensitively: feeding a bare
#: set straight into one of these cannot leak iteration order.
ORDER_NORMALIZERS = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
})


def _is_none_or_missing(call: ast.Call) -> bool:
    """True for a call with no arguments or a single literal ``None``."""
    if call.keywords:
        return False
    if not call.args:
        return True
    return (len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and call.args[0].value is None)


@rule(
    "RPR001", "no-entropy-fallback", scope=SCOPE_LIBRARY,
    description=(
        "library code must not open an OS-entropy generator "
        "(`ensure_rng(None)`, argless `random.Random()`): thread an "
        "explicit seed/rng from the caller (PR 5's quality_report fix)"
    ),
)
def check_entropy_fallback(module: ModuleContext) -> Iterator[Finding]:
    if module.is_seed_boundary:
        return
    for call in module.calls():
        name = module.resolve(call.func)
        if name is None:
            continue
        if (name == "ensure_rng" or name.endswith(".ensure_rng")):
            if _is_none_or_missing(call):
                yield module.finding(
                    call, "RPR001",
                    "ensure_rng(None) draws OS entropy in library code; "
                    "require an explicit seed/rng from the caller",
                )
        elif name == "random.Random" or name.endswith(".random.Random"):
            if _is_none_or_missing(call):
                yield module.finding(
                    call, "RPR001",
                    "argless random.Random() draws OS entropy in library "
                    "code; construct it from an explicit seed",
                )


@rule(
    "RPR002", "no-global-random-stream", scope=SCOPE_LIBRARY,
    description=(
        "no module-level `random.*` calls (or `from random import "
        "shuffle/...`): the hidden global stream breaks seed isolation; "
        "draw from an injected random.Random"
    ),
)
def check_global_random(module: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if (module.resolve(node.func.value) == "random"
                    and node.func.attr not in RANDOM_CLASS_NAMES):
                yield module.finding(
                    node, "RPR002",
                    f"random.{node.func.attr}() uses the hidden module-level "
                    "stream; draw from an injected random.Random instead",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                for alias in node.names:
                    if alias.name not in RANDOM_CLASS_NAMES:
                        yield module.finding(
                            node, "RPR002",
                            f"`from random import {alias.name}` binds the "
                            "hidden module-level stream; import the Random "
                            "class and inject an instance instead",
                        )


@rule(
    "RPR003", "no-wallclock-entropy", scope=SCOPE_NON_WALLCLOCK,
    description=(
        "no time.time/perf_counter, os.urandom, or uuid4 outside the "
        "benchmark harnesses: results must not depend on when or where "
        "they were produced"
    ),
)
def check_wallclock(module: ModuleContext) -> Iterator[Finding]:
    for call in module.calls():
        name = module.resolve(call.func)
        if name is None:
            continue
        if name in WALLCLOCK_CALLS or any(
                name.endswith("." + target) for target in WALLCLOCK_CALLS):
            yield module.finding(
                call, "RPR003",
                f"{name} reads wall-clock/OS entropy; only the benchmark "
                "harnesses may (or suppress with a justification if the "
                "column is declared nondeterministic)",
            )


def _is_set_expr(node: ast.expr, module: ModuleContext) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = module.resolve(node.func)
        return name in ("set", "frozenset")
    return False


def _consumed_by_normalizer(node: ast.AST, module: ModuleContext) -> bool:
    parent = module.parent(node)
    if not isinstance(parent, ast.Call) or node not in parent.args:
        return False
    name = module.resolve(parent.func)
    return name in ORDER_NORMALIZERS


@rule(
    "RPR004", "no-set-order-escape", scope=SCOPE_LIBRARY,
    description=(
        "iterating a bare set into an ordered collection (list(set(...)), "
        "a comprehension over a set) leaks hash order into results; "
        "wrap in sorted(...)"
    ),
)
def check_set_order_escape(module: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = module.resolve(node.func)
            if (name in ("list", "tuple") and len(node.args) == 1
                    and not node.keywords
                    and _is_set_expr(node.args[0], module)
                    and not _consumed_by_normalizer(node, module)):
                yield module.finding(
                    node, "RPR004",
                    f"{name}() over a bare set leaks hash-randomized "
                    "iteration order into an ordered collection; use "
                    "sorted(...) or a deterministic sequence",
                )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            first = node.generators[0]
            if (_is_set_expr(first.iter, module)
                    and not _consumed_by_normalizer(node, module)):
                yield module.finding(
                    node, "RPR004",
                    "comprehension over a bare set leaks hash-randomized "
                    "iteration order; iterate sorted(...) or a "
                    "deterministic sequence",
                )
