"""The rule registry.

Every rule is a module-level check function decorated with :func:`rule`; the
decorator records id, human name, scope, severity and rationale in
:data:`RULES`.  The runner consults the registry to decide which rules apply
to a file (scope + config selection) and the CLI renders it for
``repro lint --list-rules``.

Scopes
------
``SCOPE_ALL``
    The rule applies to every linted file.
``SCOPE_LIBRARY``
    The rule only applies to library code (paths under the config's
    ``library-paths``, default ``src``).  Tests may legitimately use bare
    ``random`` streams; library code may not.
``SCOPE_NON_WALLCLOCK``
    The rule applies everywhere except the config's ``wallclock-exempt``
    paths (default ``benchmarks``) — timing harnesses are the one place
    wall-clock reads belong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, TYPE_CHECKING

from .findings import ERROR, Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .context import ModuleContext

SCOPE_ALL = "all"
SCOPE_LIBRARY = "library"
SCOPE_NON_WALLCLOCK = "non-wallclock"

CheckFn = Callable[["ModuleContext"], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, applicability, and its check."""

    rule_id: str
    name: str
    description: str
    scope: str
    severity: str
    check: CheckFn | None

    def run(self, module: "ModuleContext") -> Iterator[Finding]:
        if self.check is None:
            return iter(())
        return iter(self.check(module))


#: All registered rules, keyed by id.  Populated at import time by the rule
#: modules (determinism / congest / purity) and the suppression machinery.
RULES: dict[str, Rule] = {}


def rule(
    rule_id: str,
    name: str,
    *,
    description: str,
    scope: str = SCOPE_ALL,
    severity: str = ERROR,
) -> Callable[[CheckFn], CheckFn]:
    """Register a check function under ``rule_id`` (decorator)."""

    def decorate(check: CheckFn) -> CheckFn:
        register(rule_id, name, description=description, scope=scope,
                 severity=severity, check=check)
        return check

    return decorate


def register(
    rule_id: str,
    name: str,
    *,
    description: str,
    scope: str = SCOPE_ALL,
    severity: str = ERROR,
    check: CheckFn | None = None,
) -> Rule:
    """Register a rule (used directly for engine-synthesized rules)."""
    if rule_id in RULES:
        raise ValueError(f"duplicate lint rule id {rule_id!r}")
    entry = Rule(rule_id, name, description, scope, severity, check)
    RULES[rule_id] = entry
    return entry
