"""Parallel-cell purity rules (RPR020-RPR021).

The parallel experiment executor pickles each :class:`CellTask` and runs it
in a worker process; the registered cell runner is looked up by name when
the worker imports the module.  That round trip imposes two purity
constraints that nothing at call time enforces:

* RPR020 — registry values (``CELL_RUNNERS`` by default; configurable via
  ``cell-registries``) must be module-level functions.  Lambdas, closures
  and ``partial`` objects either fail to pickle or — worse — pickle a stale
  binding; either way the serial fallback masks the bug on 1-core machines.
* RPR021 — a cell runner re-imported in a worker sees the module's globals
  *freshly initialized*, not the parent process's mutated copies.  Reading
  or writing a lowercase (mutable-by-convention) module global is therefore
  a serial/parallel divergence waiting to happen; only UPPER_CASE constants
  (and module-level functions/classes/imports) are safe to touch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext
from .findings import Finding
from .registry import rule


def _module_level_names(tree: ast.Module) -> tuple[set[str], set[str], set[str]]:
    """(function/class/import names, assigned-variable names, lambda/call names)."""
    callables: set[str] = set()
    variables: set[str] = set()
    suspect: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            callables.add(stmt.name)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                callables.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            value = stmt.value if not isinstance(stmt, ast.AugAssign) else None
            for target in targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        variables.add(name_node.id)
                        if isinstance(value, (ast.Lambda, ast.Call)):
                            suspect.add(name_node.id)
        elif isinstance(stmt, (ast.For, ast.While, ast.With)):
            for name_node in ast.walk(stmt):
                if (isinstance(name_node, ast.Name)
                        and isinstance(name_node.ctx, ast.Store)):
                    variables.add(name_node.id)
    return callables, variables, suspect


def _registry_values(module: ModuleContext) -> Iterator[tuple[ast.expr, str, ast.AST]]:
    """Yield ``(value_expr, registry_name, enclosing_function_or_None)``."""
    registries = set(module.config.cell_registries)
    enclosing: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                enclosing.setdefault(child, node)
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (isinstance(target, ast.Name) and target.id in registries
                    and isinstance(value, ast.Dict)):
                for entry in value.values:
                    yield entry, target.id, enclosing.get(node)
            elif (isinstance(target, ast.Subscript)
                  and isinstance(target.value, ast.Name)
                  and target.value.id in registries):
                yield value, target.value.id, enclosing.get(node)


@rule(
    "RPR020", "cell-runners-module-level",
    description=(
        "registered CELL_RUNNERS must be module-level functions: lambdas, "
        "closures and constructed callables break (or silently skew) the "
        "pickle-by-reference dispatch to worker processes"
    ),
)
def check_cell_runner_registration(module: ModuleContext) -> Iterator[Finding]:
    _, _, suspect = _module_level_names(module.tree)
    for value, registry, function in _registry_values(module):
        reason: str | None = None
        if isinstance(value, ast.Lambda):
            reason = "a lambda"
        elif isinstance(value, ast.Call):
            reason = "a constructed callable (partial/factory result)"
        elif isinstance(value, ast.Name):
            if function is not None and _defined_inside(value.id, function):
                reason = "a closure (function defined inside another function)"
            elif value.id in suspect:
                reason = "a module-level lambda/constructed callable"
        elif not isinstance(value, ast.Attribute):
            reason = "not a function reference"
        if reason is not None:
            yield module.finding(
                value, "RPR020",
                f"{registry} entry is {reason}; register a module-level "
                "function so worker processes can pickle it by reference",
            )


def _defined_inside(name: str, function: ast.AST) -> bool:
    for node in ast.walk(function):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name):
            return True
    return False


def _is_constant_name(name: str) -> bool:
    return name == name.upper()


@rule(
    "RPR021", "cell-runners-no-mutable-globals",
    description=(
        "cell runners execute in worker processes with freshly imported "
        "modules: touching a non-UPPER_CASE module global diverges from "
        "the serial path; pass state through the cell's kwargs"
    ),
)
def check_cell_runner_globals(module: ModuleContext) -> Iterator[Finding]:
    callables, variables, _ = _module_level_names(module.tree)
    mutable_globals = {v for v in variables
                       if v not in callables and not _is_constant_name(v)}
    runner_names = {value.id for value, _, _ in _registry_values(module)
                    if isinstance(value, ast.Name)}
    functions = {stmt.name: stmt for stmt in module.tree.body
                 if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}
    for name in sorted(runner_names & set(functions)):
        func = functions[name]
        local_names = _local_bindings(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                yield module.finding(
                    node, "RPR021",
                    f"cell runner {name} rebinds module globals via "
                    "`global`; workers never see the rebinding — return "
                    "the value from the cell instead",
                )
            elif (isinstance(node, ast.Name)
                  and isinstance(node.ctx, ast.Load)
                  and node.id in mutable_globals
                  and node.id not in local_names):
                yield module.finding(
                    node, "RPR021",
                    f"cell runner {name} reads module global {node.id!r}, "
                    "which is re-initialized in worker processes; pass it "
                    "through the cell's kwargs or make it an UPPER_CASE "
                    "constant",
                )


def _local_bindings(func: ast.FunctionDef) -> set[str]:
    args = func.args
    names = {a.arg for a in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not func:
            names.add(node.name)
    return names
