"""Per-module analysis context shared by all rules.

A :class:`ModuleContext` wraps one parsed source file and precomputes the
facts every rule keeps re-deriving from a bare AST:

* an **import table** mapping local names to canonical dotted names
  (``from ..rng import ensure_rng`` binds ``ensure_rng`` to
  ``rng.ensure_rng``; ``import random as rnd`` binds ``rnd`` to
  ``random``), so rules match *what a name refers to*, not how the module
  spelled the import;
* a **parent map** (child AST node -> enclosing node), so rules can ask
  "is this expression directly consumed by ``sorted``?" without threading
  state through a visitor;
* the config-derived **path classification** (library code? wall-clock
  exempt? seed boundary?) that scoped rules consult.

Name resolution is deliberately syntactic — no type inference, no module
execution.  Rules therefore match on canonical dotted *suffixes* (a call
resolved to ``rng.ensure_rng`` matches the target ``ensure_rng``), which is
exactly the right strength for invariant linting: false negatives require
actively aliasing a banned function through a variable, which code review
catches, while false positives stay near zero.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .config import LintConfig, path_is_under
from .findings import ERROR, Finding


class ModuleContext:
    """One parsed module plus the precomputed lookup structures."""

    def __init__(self, relpath: str, source: str, tree: ast.Module,
                 config: LintConfig) -> None:
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.config = config
        #: alias -> dotted module name, from ``import x.y as z``.
        self.module_aliases: dict[str, str] = {}
        #: local name -> ``module.original``, from ``from m import x as y``
        #: (relative dots stripped: ``from ..rng import f`` -> ``rng.f``).
        self.from_imports: dict[str, str] = {}
        self._collect_imports()
        self._parents: Optional[dict[ast.AST, ast.AST]] = None

    # -- path classification -------------------------------------------
    @property
    def is_library(self) -> bool:
        return any(path_is_under(self.relpath, p)
                   for p in self.config.library_paths)

    @property
    def is_wallclock_exempt(self) -> bool:
        return any(path_is_under(self.relpath, p)
                   for p in self.config.wallclock_exempt)

    @property
    def is_seed_boundary(self) -> bool:
        return any(path_is_under(self.relpath, p)
                   for p in self.config.seed_boundaries)

    # -- imports and name resolution -----------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.module_aliases[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    dotted = f"{module}.{alias.name}" if module else alias.name
                    self.from_imports[local] = dotted

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a ``Name``/``Attribute`` chain, or None.

        The head of the chain is looked up in the import table, so
        ``rnd.Random`` resolves to ``random.Random`` under
        ``import random as rnd``.
        """
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.from_imports:
                return self.from_imports[name]
            if name in self.module_aliases:
                return self.module_aliases[name]
            return name
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def resolves_to(self, node: ast.AST, target: str) -> bool:
        """True when ``node`` resolves to ``target`` or a ``.target`` suffix."""
        name = self.resolve(node)
        if name is None:
            return False
        return name == target or name.endswith("." + target)

    # -- structure helpers ---------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The enclosing AST node (lazily computed once per module)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[child] = outer
            self._parents = parents
        return self._parents.get(node)

    def classes(self) -> Iterator[ast.ClassDef]:
        """Every class definition in the module, at any nesting depth."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def calls(self) -> Iterator[ast.Call]:
        """Every call expression in the module."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node

    def finding(self, node: ast.AST, rule_id: str, message: str,
                severity: str = ERROR) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule_id,
            message=message,
            severity=severity,
        )


def class_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """The directly defined (non-nested) methods of a class, by name."""
    methods: dict[str, ast.FunctionDef] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = stmt  # type: ignore[assignment]
    return methods


def self_calls(func: ast.FunctionDef) -> set[str]:
    """Names of methods invoked as ``self.<name>(...)`` inside ``func``."""
    called: set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            called.add(node.func.attr)
    return called


def class_level_flag(cls: ast.ClassDef, name: str) -> bool:
    """True when the class body assigns ``name = True`` at class level."""
    for stmt in cls.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (isinstance(target, ast.Name) and target.id == name
                    and isinstance(value, ast.Constant)
                    and value.value is True):
                return True
    return False
