"""Inline suppressions: ``# repro: noqa[RPR001]``.

A suppression comment names the rule ids it silences on its own line
(comma-separated inside the brackets; trailing prose after the bracket is
encouraged — a suppression should say *why*).  Suppressions are themselves
linted by the synthesized rule :data:`SUPPRESSION_RULE_ID`:

* a suppression that silenced nothing this run is *unused* — it outlived
  the violation it excused and must be deleted, or it will silently excuse
  the next regression on that line;
* a bare ``# repro: noqa`` (no bracket list) is *malformed* — blanket
  suppressions hide unrelated future findings, so the rule list is
  mandatory;
* a suppression naming an unregistered rule id is reported too (usually a
  typo, which would otherwise turn the suppression into a no-op).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from .findings import Finding
from .registry import RULES, register

SUPPRESSION_RULE_ID = "RPR090"

register(
    SUPPRESSION_RULE_ID,
    "suppression-hygiene",
    description=(
        "`# repro: noqa[RULE,...]` comments must list valid rule ids and "
        "must actually suppress a finding; stale or malformed suppressions "
        "are reported so they cannot mask future regressions."
    ),
)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<bracket>\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)


@dataclass
class Suppression:
    """One parsed suppression comment."""

    line: int
    rules: tuple[str, ...]
    malformed: bool
    used: bool = False


def collect_suppressions(source: str) -> list[Suppression]:
    """Parse every ``# repro: noqa[...]`` comment of a source file."""
    suppressions: list[Suppression] = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        if match.group("bracket") is None:
            suppressions.append(Suppression(token.start[0], (), malformed=True))
            continue
        rules = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        suppressions.append(
            Suppression(token.start[0], rules, malformed=not rules)
        )
    return suppressions


def apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    relpath: str,
    enabled: frozenset[str] | None = None,
) -> list[Finding]:
    """Filter suppressed findings and report suppression-hygiene issues.

    ``enabled`` is the set of rule ids that actually ran on this file: a
    suppression is only judged *unused* when at least one of the rules it
    names ran (a partial ``--rule`` invocation must not report the other
    rules' suppressions as stale).
    """
    by_line: dict[int, list[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)

    kept: list[Finding] = []
    for finding in findings:
        suppressed = False
        for suppression in by_line.get(finding.line, ()):
            if finding.rule in suppression.rules:
                suppression.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)

    hygiene = RULES[SUPPRESSION_RULE_ID]
    for suppression in suppressions:
        if suppression.malformed:
            kept.append(Finding(
                relpath, suppression.line, 1, SUPPRESSION_RULE_ID,
                "malformed suppression: use `# repro: noqa[RPR0xx]` with an "
                "explicit rule list (blanket noqa is not allowed)",
                hygiene.severity,
            ))
            continue
        unknown = [r for r in suppression.rules if r not in RULES]
        for rule_id in unknown:
            kept.append(Finding(
                relpath, suppression.line, 1, SUPPRESSION_RULE_ID,
                f"suppression names unknown rule {rule_id}",
                hygiene.severity,
            ))
        ran = (enabled is None
               or any(r in enabled for r in suppression.rules))
        if not suppression.used and not unknown and ran:
            listed = ",".join(suppression.rules)
            kept.append(Finding(
                relpath, suppression.line, 1, SUPPRESSION_RULE_ID,
                f"unused suppression for {listed}: no finding on this line "
                "is silenced by it — delete the noqa",
                hygiene.severity,
            ))
    return kept
