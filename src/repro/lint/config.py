"""Configuration: the ``[tool.repro.lint]`` block of ``pyproject.toml``.

The config controls which rules run (``select``/``ignore``/``warn``) and how
paths are classified (``library-paths``, ``wallclock-exempt``,
``seed-boundaries``, ``exclude``).  All path values are POSIX-style prefixes
relative to the project root (the directory holding ``pyproject.toml``).

Python 3.10 has no ``tomllib``, and this repository adds no dependencies, so
loading falls back to :func:`parse_lint_table` — a minimal parser for the
one table this package reads (string / bool / int scalars and string lists,
possibly multi-line).  The test suite pins the fallback parser against
``tomllib`` on the repo's own ``pyproject.toml`` wherever ``tomllib``
exists, so the two loaders cannot drift.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Mapping, Optional


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration (defaults match the repo layout)."""

    #: Rule ids to run (empty = every registered rule).
    select: tuple[str, ...] = ()
    #: Rule ids to skip entirely.
    ignore: tuple[str, ...] = ()
    #: Rule ids reported as warnings (never affect the exit code).
    warn: tuple[str, ...] = ()
    #: Path prefixes never linted (fixture corpora with intentional
    #: violations live here).
    exclude: tuple[str, ...] = ()
    #: Paths holding library code — the scope of the determinism rules.
    library_paths: tuple[str, ...] = ("src",)
    #: Paths where wall-clock reads (RPR003) are legitimate.
    wallclock_exempt: tuple[str, ...] = ("benchmarks",)
    #: Library files allowed to construct OS-entropy generators (RPR001):
    #: the explicit seed boundary of the codebase, normally empty because
    #: even ``repro.rng`` itself never calls ``ensure_rng(None)`` statically.
    seed_boundaries: tuple[str, ...] = ()
    #: Names of module-level registries whose values must be picklable
    #: module functions (RPR020/RPR021).
    cell_registries: tuple[str, ...] = ("CELL_RUNNERS",)


def _normalize_key(key: str) -> str:
    return key.replace("-", "_")


def config_from_mapping(data: Mapping[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a raw TOML table (kebab or snake)."""
    known = {f.name for f in fields(LintConfig)}
    values: dict[str, Any] = {}
    for key, value in data.items():
        name = _normalize_key(key)
        if name not in known:
            raise ValueError(f"unknown [tool.repro.lint] key {key!r}")
        if isinstance(value, (list, tuple)):
            values[name] = tuple(str(item) for item in value)
        else:
            raise ValueError(
                f"[tool.repro.lint] key {key!r} must be a list of strings"
            )
    return replace(LintConfig(), **values)


def load_config(root: Path) -> LintConfig:
    """Load the config from ``root/pyproject.toml`` (defaults if absent)."""
    pyproject = Path(root) / "pyproject.toml"
    if not pyproject.is_file():
        return LintConfig()
    text = pyproject.read_text(encoding="utf-8")
    if sys.version_info >= (3, 11):
        import tomllib

        table = (
            tomllib.loads(text)
            .get("tool", {})
            .get("repro", {})
            .get("lint", {})
        )
    else:  # pragma: no cover - exercised on 3.10 CI only
        table = parse_lint_table(text)
    return config_from_mapping(table)


def path_is_under(relpath: str, prefix: str) -> bool:
    """True when POSIX ``relpath`` equals or lives under ``prefix``."""
    prefix = prefix.rstrip("/")
    if prefix in ("", "."):
        return True
    return relpath == prefix or relpath.startswith(prefix + "/")


# ----------------------------------------------------------------------
# Fallback parser (Python 3.10: no tomllib, no added dependencies).
# ----------------------------------------------------------------------
_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"|\'([^\']*)\'')


def parse_lint_table(text: str, table: str = "tool.repro.lint") -> dict[str, Any]:
    """Extract one TOML table using a minimal, dependency-free parser.

    Supports exactly the value shapes the lint config uses: double- or
    single-quoted strings, booleans, integers, and (possibly multi-line)
    lists of strings.  Comments and other tables are ignored.
    """
    lines = text.splitlines()
    in_table = False
    result: dict[str, Any] = {}
    pending_key: Optional[str] = None
    pending_value = ""
    for raw in lines:
        line = raw.strip()
        if pending_key is None:
            if line.startswith("["):
                in_table = line == f"[{table}]"
                continue
            if not in_table or not line or line.startswith("#"):
                continue
            if "=" not in line:
                continue
            key, _, value = line.partition("=")
            pending_key, pending_value = key.strip(), value.strip()
        else:
            pending_value += " " + line
        if pending_value.startswith("[") and _brackets_open(pending_value):
            continue  # multi-line list: keep accumulating
        result[pending_key] = _parse_value(pending_value)
        pending_key, pending_value = None, ""
    return result


def _brackets_open(value: str) -> bool:
    depth = 0
    for match in re.finditer(r'"(?:[^"\\]|\\.)*"|\'[^\']*\'|[\[\]#]', value):
        token = match.group(0)
        if token == "[":
            depth += 1
        elif token == "]":
            depth -= 1
        elif token == "#":
            break
    return depth > 0


def _parse_value(value: str) -> Any:
    value = value.strip()
    if value.startswith("["):
        body = value[1:value.rindex("]")]
        return [
            m.group(1) if m.group(1) is not None else m.group(2)
            for m in _STRING_RE.finditer(body)
        ]
    string = _STRING_RE.match(value)
    if string is not None:
        return string.group(1) if string.group(1) is not None else string.group(2)
    bare = value.split("#", 1)[0].strip()
    if bare in ("true", "false"):
        return bare == "true"
    try:
        return int(bare)
    except ValueError:
        raise ValueError(f"unsupported TOML value in lint config: {value!r}")
