"""CONGEST protocol rules (RPR010-RPR013).

The round engine trusts three structural declarations an algorithm class
makes, and silently produces wrong metrics (or wrong runs) when the code
drifts from them.  Each rule mechanizes one declaration:

* RPR010 — ``single_channel = True`` promises at most one message per
  directed link per round, which holds exactly when the class sends on a
  single algorithm id (the express delivery lane skips the duplicate-send
  guard on this promise).  A single-channel class must therefore pass
  ``algorithm_id`` as a constant or the instance's own
  ``self.algorithm_id`` — a *varying* id (loop index, arithmetic over a
  base id) is channel multiplexing, which needs the metered ring path.
* RPR011 — ``on_crash``/``on_recover`` are engine hooks with the fixed
  shape ``(self, node)``; an override with a different signature raises
  only when a fault actually hits that node, i.e. in the middle of an
  adversarial sweep.
* RPR012 — the engine snapshots ``wake_at_rounds`` when a run (or a
  composed stage) starts; assigning it later in the algorithm's lifecycle
  silently changes nothing.  Writes are allowed only in ``__init__`` /
  ``on_start`` / ``initialize`` and helpers reachable from them via
  ``self.<method>()`` calls.
* RPR013 — a bulk kernel declares its mutable round state in
  ``bulk_state``; the equivalence oracle resets/compares exactly those
  attributes, so a ``bulk_round`` (or any helper reachable from it)
  rebinding an undeclared ``self.<attr>`` mutates state the oracle never
  sees.  Element stores into declared arrays are fine — the rule flags
  attribute *rebinding* only.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .context import ModuleContext, class_level_flag, class_methods, self_calls
from .findings import Finding
from .registry import rule

#: Messaging methods of NodeContext and the 0-based position of their
#: ``algorithm_id`` parameter.
MESSAGING_METHODS = {
    "send": 3,
    "multicast": 3,
    "multicast_links": 4,
    "broadcast": 2,
}

#: Methods that run before the engine snapshots an algorithm's timers.
TIMER_SETUP_METHODS = frozenset({"__init__", "on_start", "initialize"})


def _algorithm_id_arg(call: ast.Call, position: int) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == "algorithm_id":
            return keyword.value
    if len(call.args) > position:
        return call.args[position]
    return None


def _simple_assignments(func: ast.FunctionDef) -> dict[str, ast.expr]:
    """Last ``name = <expr>`` binding for each plain local of ``func``."""
    assigns: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assigns[target.id] = node.value
    return assigns


def _is_constant_channel(expr: ast.expr,
                         assigns: dict[str, ast.expr],
                         depth: int = 0) -> bool:
    """True when ``expr`` is a per-instance-constant algorithm id."""
    if isinstance(expr, ast.Constant):
        return True
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return True
    if isinstance(expr, ast.Name) and depth < 8:
        bound = assigns.get(expr.id)
        if bound is not None:
            return _is_constant_channel(bound, assigns, depth + 1)
    return False


@rule(
    "RPR010", "single-channel-no-multiplex",
    description=(
        "a `single_channel = True` algorithm promises one message per link "
        "per round; sending with a varying algorithm_id multiplexes "
        "channels and breaks the express-lane delivery proof"
    ),
)
def check_single_channel(module: ModuleContext) -> Iterator[Finding]:
    for cls in module.classes():
        if not class_level_flag(cls, "single_channel"):
            continue
        for method in class_methods(cls).values():
            assigns = _simple_assignments(method)
            for node in ast.walk(method):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)):
                    continue
                position = MESSAGING_METHODS.get(node.func.attr)
                if position is None:
                    continue
                channel = _algorithm_id_arg(node, position)
                if channel is None:
                    continue
                if not _is_constant_channel(channel, assigns):
                    yield module.finding(
                        node, "RPR010",
                        f"single-channel class {cls.name} passes a varying "
                        f"algorithm_id to {node.func.attr}(); multiplexed "
                        "channels violate the one-message-per-link promise "
                        "(drop `single_channel` or fix the id)",
                    )


def _is_algorithm_class(cls: ast.ClassDef, module: ModuleContext) -> bool:
    for base in cls.bases:
        name = module.resolve(base)
        if name is not None and name.split(".")[-1].endswith("Algorithm"):
            return True
    return False


@rule(
    "RPR011", "crash-hook-signature",
    description=(
        "`on_crash`/`on_recover` overrides must match the engine hook "
        "signature `(self, node)` — a mismatch only surfaces mid-sweep, "
        "when a fault first hits the node"
    ),
)
def check_crash_hooks(module: ModuleContext) -> Iterator[Finding]:
    for cls in module.classes():
        if not _is_algorithm_class(cls, module):
            continue
        for name, method in class_methods(cls).items():
            if name not in ("on_crash", "on_recover"):
                continue
            args = method.args
            positional = list(args.posonlyargs) + list(args.args)
            ok = (len(positional) == 2
                  and args.vararg is None
                  and args.kwarg is None
                  and not args.kwonlyargs)
            if not ok:
                yield module.finding(
                    method, "RPR011",
                    f"{cls.name}.{name} must match the engine hook "
                    "signature `(self, node)`; extra, missing, or variadic "
                    "parameters fail only when a fault fires",
                )


@rule(
    "RPR012", "timers-declared-up-front",
    description=(
        "`wake_at_rounds` is snapshotted at run/stage start; assign it "
        "only from `__init__`/`on_start`/`initialize`-reachable code — "
        "later writes are silently ignored by the engine"
    ),
)
def check_timer_declaration(module: ModuleContext) -> Iterator[Finding]:
    for cls in module.classes():
        methods = class_methods(cls)
        writes: list[tuple[str, ast.AST]] = []
        for name, method in methods.items():
            for node in ast.walk(method):
                target: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    for t in node.targets:
                        if _is_self_wake_attr(t):
                            target = t
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    if _is_self_wake_attr(node.target):
                        target = node.target
                if target is not None:
                    writes.append((name, node))
        if not writes:
            continue
        reachable = set(TIMER_SETUP_METHODS)
        frontier = [m for m in TIMER_SETUP_METHODS if m in methods]
        while frontier:
            called = self_calls(methods[frontier.pop()])
            for callee in called:
                if callee in methods and callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)
        for method_name, node in writes:
            if method_name not in reachable:
                yield module.finding(
                    node, "RPR012",
                    f"{cls.name}.{method_name} assigns self.wake_at_rounds "
                    "after setup: the engine snapshots timers at run/stage "
                    "start, so this write is silently ignored",
                )


def _is_self_wake_attr(node: ast.expr) -> bool:
    return (isinstance(node, ast.Attribute)
            and node.attr == "wake_at_rounds"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _declared_bulk_state(cls: ast.ClassDef) -> Optional[frozenset]:
    """The class-level ``bulk_state`` tuple of string names, if declared."""
    for stmt in cls.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "bulk_state":
                try:
                    names = ast.literal_eval(value)
                except (ValueError, TypeError):
                    return None
                if (isinstance(names, tuple)
                        and all(isinstance(n, str) for n in names)):
                    return frozenset(names)
                return None
    return None


@rule(
    "RPR013", "bulk-state-declared",
    description=(
        "a bulk kernel's round code may only rebind `self.<attr>` names "
        "listed in its `bulk_state` tuple — the bulk≡per-node equivalence "
        "oracle tracks exactly the declared state, so undeclared writes "
        "escape it"
    ),
)
def check_bulk_state_declared(module: ModuleContext) -> Iterator[Finding]:
    for cls in module.classes():
        declared = _declared_bulk_state(cls)
        if declared is None:
            continue
        methods = class_methods(cls)
        if "bulk_round" not in methods:
            continue
        reachable = {"bulk_round"}
        frontier = ["bulk_round"]
        while frontier:
            for callee in self_calls(methods[frontier.pop()]):
                if callee in methods and callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)
        for name in sorted(reachable):
            for node in ast.walk(methods[name]):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr not in declared):
                        yield module.finding(
                            node, "RPR013",
                            f"{cls.name}.{name} rebinds self.{target.attr} "
                            "from bulk-round code but the attribute is not "
                            "in `bulk_state`; declare it or keep the "
                            "mutation out of the round path",
                        )
