"""The lint driver: file discovery, rule dispatch, output formatting.

``lint_paths`` is the library entry point (the CLI and the test suite both
call it): walk the given paths, parse each ``.py`` file once, run every
applicable rule over the shared :class:`ModuleContext`, apply inline
suppressions, and return the findings sorted by ``(path, line, col,
rule)``.  The sort plus the fixed JSON key order make ``--format json``
byte-stable, which the CI lane and ``tests/test_lint.py`` rely on.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .config import LintConfig, load_config, path_is_under
from .context import ModuleContext
from .findings import ERROR, WARNING, Finding
from .registry import (
    RULES,
    Rule,
    SCOPE_LIBRARY,
    SCOPE_NON_WALLCLOCK,
)
from .registry import register
from .suppress import SUPPRESSION_RULE_ID, apply_suppressions, collect_suppressions

# Importing the rule packs populates the registry.
from . import congest as _congest  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import purity as _purity  # noqa: F401

#: Synthesized rule id for files the parser rejects.
PARSE_ERROR_RULE = "RPR000"

register(
    PARSE_ERROR_RULE,
    "parse-error",
    description="the file must parse before any invariant can be checked",
)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def discover_files(paths: Sequence[str], root: Path,
                   config: LintConfig) -> list[Path]:
    """The ``.py`` files under ``paths``, minus excluded prefixes, sorted."""
    files: set[Path] = set()
    for entry in paths:
        target = Path(entry)
        if not target.is_absolute():
            target = root / target
        if target.is_file() and target.suffix == ".py":
            files.add(target)
        elif target.is_dir():
            files.update(p for p in target.rglob("*.py")
                         if "__pycache__" not in p.parts)
    kept = [
        f for f in files
        if not any(path_is_under(_relpath(f, root), prefix)
                   for prefix in config.exclude)
    ]
    return sorted(kept)


def select_rules(config: LintConfig,
                 only: Optional[Iterable[str]] = None) -> list[Rule]:
    """The enabled rules after ``select``/``ignore``/``--rule`` filtering."""
    requested = {r.upper() for r in only} if only else None
    if requested is not None:
        unknown = requested - set(RULES)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
    enabled = []
    for rule_id, entry in sorted(RULES.items()):
        if config.select and rule_id not in config.select:
            continue
        if rule_id in config.ignore:
            continue
        if requested is not None and rule_id not in requested:
            continue
        enabled.append(entry)
    return enabled


def _applies(entry: Rule, module: ModuleContext) -> bool:
    if entry.scope == SCOPE_LIBRARY:
        return module.is_library
    if entry.scope == SCOPE_NON_WALLCLOCK:
        return not module.is_wallclock_exempt
    return True


def _severity(entry: Rule, config: LintConfig) -> str:
    return WARNING if entry.rule_id in config.warn else entry.severity


def lint_file(path: Path, root: Path, config: LintConfig,
              rules: Sequence[Rule]) -> list[Finding]:
    """Lint one file: parse, run applicable rules, apply suppressions."""
    relpath = _relpath(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(relpath, exc.lineno or 1, (exc.offset or 0) + 1,
                        PARSE_ERROR_RULE, f"file does not parse: {exc.msg}",
                        ERROR)]
    module = ModuleContext(relpath, source, tree, config)
    findings: list[Finding] = []
    ran: set[str] = set()
    for entry in rules:
        if entry.check is None or not _applies(entry, module):
            continue
        ran.add(entry.rule_id)
        severity = _severity(entry, config)
        for finding in entry.run(module):
            if finding.severity != severity:
                finding = Finding(finding.path, finding.line, finding.col,
                                  finding.rule, finding.message, severity)
            findings.append(finding)
    suppressions = collect_suppressions(source)
    result = apply_suppressions(findings, suppressions, relpath,
                                enabled=frozenset(ran))
    hygiene_on = any(e.rule_id == SUPPRESSION_RULE_ID for e in rules)
    hygiene_severity = _severity(RULES[SUPPRESSION_RULE_ID], config)
    final: list[Finding] = []
    for finding in result:
        if finding.rule == SUPPRESSION_RULE_ID:
            if not hygiene_on:
                continue
            if finding.severity != hygiene_severity:
                finding = Finding(finding.path, finding.line, finding.col,
                                  finding.rule, finding.message,
                                  hygiene_severity)
        final.append(finding)
    return final


def lint_paths(
    paths: Sequence[str],
    *,
    root: Optional[Path] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint ``paths`` and return all findings, sorted and deduplicated."""
    root = Path.cwd() if root is None else Path(root)
    if config is None:
        config = load_config(root)
    enabled = select_rules(config, rules)
    findings: set[Finding] = set()
    for path in discover_files(paths, root, config):
        findings.update(lint_file(path, root, config, enabled))
    return sorted(findings)


def has_errors(findings: Iterable[Finding]) -> bool:
    return any(f.severity == ERROR for f in findings)


def format_text(findings: Sequence[Finding]) -> str:
    """Human-readable report (one line per finding plus a summary)."""
    lines = [f.render() for f in findings]
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Byte-stable JSON report (sorted findings, fixed key order)."""
    return json.dumps([f.to_dict() for f in sorted(findings)], indent=2,
                      sort_keys=False)


def format_rule_table() -> str:
    """The registered rules as an aligned text table (``--list-rules``)."""
    rows = [(r.rule_id, r.name, r.scope, r.severity)
            for _, r in sorted(RULES.items())]
    width_name = max(len(row[1]) for row in rows)
    lines = [
        f"{rule_id}  {name:<{width_name}}  [{scope}/{severity}]"
        for rule_id, name, scope, severity in rows
    ]
    return "\n".join(lines)
