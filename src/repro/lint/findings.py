"""The finding record every lint rule emits.

A :class:`Finding` is one diagnosed violation, addressed by file / line /
column.  Findings order and compare by ``(path, line, col, rule)`` — the
message never participates — which is what makes ``repro lint --format
json`` byte-stable across runs and machines: the runner sorts findings and
the serialization has no environment-dependent field.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Severities.  Errors fail the run (exit code 1); warnings are reported
#: but do not affect the exit code (rules are downgraded per-config via
#: ``warn = ["RPR0xx"]``).
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    severity: str = field(default=ERROR, compare=False)

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready mapping with a fixed key order."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text form (``path:line:col: RULE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
