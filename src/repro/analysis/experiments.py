"""Experiment harness: workload generation, sweeps and result tables.

The paper has no experimental section, so the "tables and figures" this
repository reproduces are its quantitative claims (see DESIGN.md §5 and
EXPERIMENTS.md).  Each ``run_*`` function below regenerates one experiment:
it builds the workloads, runs the constructions / applications, and returns
an :class:`ExperimentTable` whose rows are what EXPERIMENTS.md reports.  The
benchmark suite calls the same functions (so `pytest benchmarks/` both times
them and re-produces the numbers), and the example scripts print them.

Every experiment is decomposed into three deterministic pieces:

* a **planner** (``plan_*``) that enumerates the sweep as a list of
  :class:`~repro.analysis.parallel.CellTask` — pure, picklable per-cell
  (typically per ``(size, trial)``) tasks — plus a reducer that assembles
  the table from the cell results *in cell order*;
* a **cell runner** (registered in :data:`CELL_RUNNERS`) that executes one
  cell; every random decision inside a cell draws from a stream derived
  with :func:`repro.rng.derive_seed` from the base seed and the cell's
  coordinates, so cells never share RNG state;
* the public ``run_*`` wrapper, which executes the plan — serially by
  default, or sharded over a process pool via ``workers=N``.

Because cells are independent and the reducers are order-deterministic,
parallel runs are bit-identical to serial runs at any worker count (the
test-suite pins this); the only nondeterministic columns are wall-clock
timings, which tables declare in ``nondeterministic_columns``.

Design choices documented once here:

* **Workloads.**  ``hub`` — hub-backbone graphs of exact diameter ``D`` with
  adversarial long-path partitions; ``lower_bound`` — the Elkin/Das-Sarma
  instances with their canonical path parts; ``cluster`` — diameter-4
  cluster stars with the clusters as parts.
* **Sampling regime.**  The default ``log_factor`` is below 1 so that the
  sampling probability stays meaningfully below 1 at simulator scale (the
  paper's exact ``p`` clamps to 1 for small ``n``, collapsing the
  construction to the naive shortcut); EXPERIMENTS.md reports the factor
  used for every table.
* **Determinism.**  Every experiment takes a seed and is reproducible —
  per cell, not just per sweep.
"""

from __future__ import annotations

import functools
import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..applications.mincut import approximate_min_cut, stoer_wagner_min_cut
from ..applications.mst import boruvka_mst, default_shortcut_factory, kruskal_mst
from ..applications.sssp import bellman_ford, dijkstra, shortcut_accelerated_sssp
from ..applications.two_ecss import two_ecss_approximation
from ..applications.aggregation import estimate_aggregation_rounds
from ..graphs.generators import (
    cluster_star_graph,
    hub_diameter_graph,
    planted_cut_graph,
    with_random_weights,
)
from ..graphs.graph import Graph, WeightedGraph
from ..graphs.lower_bound import lower_bound_instance
from ..graphs.partitions import path_partition, random_connected_partition, singleton_free
from ..params import (
    elkin_lower_bound,
    ghaffari_haeupler_quality,
    k_d_value,
    predicted_congestion,
    predicted_dilation,
    predicted_quality,
    predicted_rounds_distributed,
)
from ..shortcuts.baselines import (
    build_empty_shortcut,
    build_ghaffari_haeupler_shortcut,
    build_kitamura_style_shortcut,
    build_naive_shortcut,
)
from ..shortcuts.distributed import build_distributed_kogan_parter
from ..shortcuts.kogan_parter import build_kogan_parter_shortcut
from ..shortcuts.partition import Partition
from ..shortcuts.shortcut_trees import ShortcutTree
from ..graphs.traversal import shortest_path

from ..rng import derive_rng, derive_seed, ensure_rng
from .parallel import CellTask, run_cells


# ----------------------------------------------------------------------
# result tables
# ----------------------------------------------------------------------
@dataclass
class ExperimentTable:
    """A rendered experiment result: a named table of rows.

    Attributes:
        experiment_id: identifier from DESIGN.md (e.g. ``"E1"``).
        title: human-readable description.
        headers: column names.
        rows: the data rows (values are rendered with :func:`render`).
        notes: free-form annotations (parameters used, caveats).
        nondeterministic_columns: headers whose values vary between runs of
            the same seed (wall-clock timings); excluded by
            :meth:`deterministic_rows`.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    nondeterministic_columns: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append a row (must match the header count)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values but the table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[object]:
        """Return one column by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def deterministic_rows(self) -> list[list[object]]:
        """Rows with the nondeterministic (timing) columns masked out.

        This is the payload the determinism contract covers: two runs with
        the same seed — serial or parallel, any worker count — produce
        identical ``deterministic_rows()``.
        """
        skip = {
            self.headers.index(name)
            for name in self.nondeterministic_columns
            if name in self.headers
        }
        if not skip:
            return [list(row) for row in self.rows]
        return [
            [value for idx, value in enumerate(row) if idx not in skip]
            for row in self.rows
        ]

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                if value == float("inf"):
                    return "inf"
                return f"{value:.3g}"
            return str(value)

        str_rows = [[fmt(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(self.headers))))
        for row in str_rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


#: A plan is the cell list plus the reducer that turns ordered cell results
#: into the experiment's table.
ExperimentPlan = tuple[list[CellTask], Callable[[list], ExperimentTable]]


def _rows_reducer(**table_kwargs):
    """Reducer for experiments whose cells each produce one complete row
    (or ``None`` for skipped cells); ``table_kwargs`` construct the table."""

    def reduce(results: list) -> ExperimentTable:
        table = ExperimentTable(**table_kwargs)
        for row in results:
            if row is not None:
                table.add_row(*row)
        return table

    return reduce


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
@dataclass
class Workload:
    """A graph plus a part collection, ready for shortcut construction.

    Attributes:
        name: workload family name.
        graph: the host graph.
        partition: the parts.
        diameter: the exact graph diameter.
    """

    name: str
    graph: Graph
    partition: Partition
    diameter: int


def make_workload(kind: str, n: int, diameter_value: int, *, seed: int = 0) -> Workload:
    """Build one of the named workload families.

    Args:
        kind: ``"hub"``, ``"lower_bound"`` or ``"cluster"``.
        n: approximate number of vertices.
        diameter_value: target diameter (``cluster`` always has diameter 4).
        seed: RNG seed.

    Returns:
        A :class:`Workload`.
    """
    rng = ensure_rng(seed)
    if kind == "hub":
        # A sparse layer of random chords between the non-backbone vertices
        # gives the graph enough path structure for the adversarial long-path
        # partition to exist (without the chords, almost every vertex is a
        # degree-1 leaf of a hub and no long induced path can be carved).
        extra = min(0.05, 4.0 / max(n, 1))
        graph = hub_diameter_graph(n, diameter_value, extra_edge_prob=extra, rng=rng)
        k_d = k_d_value(graph.num_vertices, diameter_value)
        path_len = max(3, int(3 * k_d))
        num_paths = max(2, int(graph.num_vertices / max(path_len, 2)))
        parts = path_partition(graph, num_paths, path_len, rng=rng)
        parts = singleton_free(parts)
        if not parts:
            parts = singleton_free(random_connected_partition(graph, num_paths, rng=rng))
        partition = Partition(graph, parts, validate=False)
        return Workload(name="hub", graph=graph, partition=partition, diameter=diameter_value)
    if kind == "lower_bound":
        inst = lower_bound_instance(n, diameter_value)
        partition = Partition(inst.graph, inst.parts, validate=False)
        return Workload(
            name="lower_bound",
            graph=inst.graph,
            partition=partition,
            diameter=inst.diameter,
        )
    if kind == "cluster":
        cluster_size = max(3, int(math.sqrt(n)))
        num_clusters = max(2, n // cluster_size)
        graph = cluster_star_graph(num_clusters, cluster_size, rng=rng)
        parts = []
        for c in range(num_clusters):
            base = 1 + c * cluster_size
            parts.append(set(range(base, base + cluster_size)))
        partition = Partition(graph, parts, validate=False)
        return Workload(name="cluster", graph=graph, partition=partition, diameter=4)
    raise ValueError(f"unknown workload kind {kind!r}")


def make_weighted_workload(
    kind: str, n: int, diameter_value: int, *, seed: int = 0
) -> tuple[WeightedGraph, int]:
    """Build a weighted graph of the named family (for the application experiments)."""
    workload = make_workload(kind, n, diameter_value, seed=seed)
    weighted = with_random_weights(workload.graph, rng=seed + 1)
    return weighted, workload.diameter


@functools.lru_cache(maxsize=8)
def _cached_lower_bound_instance(n: int, diameter_value: int):
    """Memoized lower-bound instance for per-trial cells.

    The construction is deterministic and seed-free, but per-trial cell
    granularity would otherwise rebuild the identical instance once per
    cell (25x for E11's default sweep).  Cells treat the instance as
    read-only — nothing in the sampling or measurement path mutates the
    host graph — so sharing one object per (n, D) within a process is
    safe, and each worker process builds its own cache, preserving the
    bit-identity contract.
    """
    return lower_bound_instance(n, diameter_value)


# ----------------------------------------------------------------------
# E1-E3: quality / congestion / dilation of the KP construction
# ----------------------------------------------------------------------
def _quality_cell(
    *, kind: str, n: int, diameter_value: int, log_factor: float, seed: int, trial: int
) -> dict:
    """E1 cell: one trial of one (diameter, size) sweep point."""
    workload = make_workload(
        kind, n, diameter_value,
        seed=derive_seed(seed, "E1", diameter_value, n, trial, "workload"),
    )
    result = build_kogan_parter_shortcut(
        workload.graph,
        workload.partition,
        diameter_value=workload.diameter,
        log_factor=log_factor,
        rng=derive_seed(seed, "E1", diameter_value, n, trial, "sample"),
    )
    report = result.shortcut.quality_report(
        exact_dilation=False,
        rng=derive_seed(seed, "E1", diameter_value, n, trial, "dilation"),
    )
    return {
        "name": workload.name,
        "n_actual": workload.graph.num_vertices,
        "diameter": workload.diameter,
        "quality": report.quality,
        "congestion": report.congestion,
        "dilation": report.dilation,
    }


def plan_quality_experiment(
    *,
    sizes: Sequence[int] = (200, 400, 800),
    diameters: Sequence[int] = (4, 6, 8),
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 7,
    trials: int = 1,
) -> ExperimentPlan:
    """Plan E1: one cell per (diameter, size, trial)."""
    tasks = [
        CellTask("E1", dict(kind=kind, n=n, diameter_value=diameter_value,
                            log_factor=log_factor, seed=seed, trial=t))
        for diameter_value in diameters
        for n in sizes
        for t in range(trials)
    ]

    def reduce(results: list) -> ExperimentTable:
        table = ExperimentTable(
            experiment_id="E1",
            title="Kogan-Parter shortcut quality vs predicted k_D log n (Theorem 1.1)",
            headers=[
                "workload", "n", "D", "k_D", "congestion", "dilation", "quality",
                "predicted", "ratio",
            ],
            notes=[f"kind={kind}, log_factor={log_factor}, trials={trials}, seed={seed}"],
        )
        it = iter(results)
        for _diameter_value in diameters:
            for _n in sizes:
                cells = [next(it) for _ in range(trials)]
                last = cells[-1]
                predicted = max(
                    1.0, log_factor * predicted_quality(last["n_actual"], last["diameter"])
                )
                quality = statistics.mean(c["quality"] for c in cells)
                table.add_row(
                    last["name"],
                    last["n_actual"],
                    last["diameter"],
                    round(k_d_value(last["n_actual"], last["diameter"]), 2),
                    statistics.mean(c["congestion"] for c in cells),
                    statistics.mean(c["dilation"] for c in cells),
                    quality,
                    round(predicted, 2),
                    round(quality / predicted, 3),
                )
        return table

    return tasks, reduce


def run_quality_experiment(
    *,
    sizes: Sequence[int] = (200, 400, 800),
    diameters: Sequence[int] = (4, 6, 8),
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 7,
    trials: int = 1,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E1: measured KP shortcut quality vs. the predicted ``k_D log n`` curve."""
    tasks, reduce = plan_quality_experiment(
        sizes=sizes, diameters=diameters, kind=kind, log_factor=log_factor,
        seed=seed, trials=trials,
    )
    return reduce(run_cells(tasks, workers=workers))


def _congestion_cell(
    *, kind: str, n: int, diameter_value: int, log_factor: float, seed: int
) -> list:
    """E2 cell: one size point — one construction, one table row."""
    workload = make_workload(
        kind, n, diameter_value, seed=derive_seed(seed, "E2", n, "workload")
    )
    result = build_kogan_parter_shortcut(
        workload.graph,
        workload.partition,
        diameter_value=workload.diameter,
        log_factor=log_factor,
        rng=derive_seed(seed, "E2", n, "sample"),
    )
    loads = result.shortcut.edge_loads()
    congestion = max(loads.values(), default=0)
    mean_load = statistics.mean(loads.values()) if loads else 0.0
    n_actual = workload.graph.num_vertices
    predicted = max(1.0, log_factor * predicted_congestion(n_actual, workload.diameter))
    return [
        workload.name,
        n_actual,
        workload.diameter,
        congestion,
        round(mean_load, 2),
        round(predicted, 2),
        round(congestion / predicted, 3),
    ]


def plan_congestion_experiment(
    *,
    sizes: Sequence[int] = (200, 400, 800),
    diameter_value: int = 6,
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 11,
) -> ExperimentPlan:
    """Plan E2: one cell per size."""
    tasks = [
        CellTask("E2", dict(kind=kind, n=n, diameter_value=diameter_value,
                            log_factor=log_factor, seed=seed))
        for n in sizes
    ]
    return tasks, _rows_reducer(
        experiment_id="E2",
        title="Edge congestion of the KP construction vs O(D k_D log n) (Section 2)",
        headers=["workload", "n", "D", "congestion", "mean_load", "predicted", "ratio"],
        notes=[f"kind={kind}, log_factor={log_factor}, seed={seed}"],
    )


def run_congestion_experiment(
    *,
    sizes: Sequence[int] = (200, 400, 800),
    diameter_value: int = 6,
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 11,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E2: measured edge congestion vs. the ``O(D k_D log n)`` Chernoff bound."""
    tasks, reduce = plan_congestion_experiment(
        sizes=sizes, diameter_value=diameter_value, kind=kind,
        log_factor=log_factor, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


def _dilation_cell(
    *, kind: str, n: int, diameter_value: int, log_factor: float, seed: int
) -> list:
    """E3 cell: one (diameter, size) point."""
    workload = make_workload(
        kind, n, diameter_value,
        seed=derive_seed(seed, "E3", diameter_value, n, "workload"),
    )
    empty = build_empty_shortcut(workload.graph, workload.partition)
    induced = empty.dilation(
        exact=False, rng=derive_seed(seed, "E3", diameter_value, n, "induced_dilation")
    )
    result = build_kogan_parter_shortcut(
        workload.graph,
        workload.partition,
        diameter_value=workload.diameter,
        log_factor=log_factor,
        rng=derive_seed(seed, "E3", diameter_value, n, "sample"),
    )
    dilation = result.shortcut.dilation(
        exact=False, rng=derive_seed(seed, "E3", diameter_value, n, "dilation")
    )
    n_actual = workload.graph.num_vertices
    predicted = max(1.0, log_factor * predicted_dilation(n_actual, workload.diameter))
    return [
        workload.name,
        n_actual,
        workload.diameter,
        induced,
        dilation,
        round(predicted, 2),
        round(dilation / predicted, 3),
    ]


def plan_dilation_experiment(
    *,
    sizes: Sequence[int] = (200, 400, 800),
    diameters: Sequence[int] = (4, 6),
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 13,
) -> ExperimentPlan:
    """Plan E3: one cell per (diameter, size)."""
    tasks = [
        CellTask("E3", dict(kind=kind, n=n, diameter_value=diameter_value,
                            log_factor=log_factor, seed=seed))
        for diameter_value in diameters
        for n in sizes
    ]
    return tasks, _rows_reducer(
        experiment_id="E3",
        title="Dilation of augmented parts vs O(k_D log n) (Theorem 3.1)",
        headers=[
            "workload", "n", "D", "induced_diam", "dilation", "predicted", "ratio",
        ],
        notes=[f"kind={kind}, log_factor={log_factor}, seed={seed}"],
    )


def run_dilation_experiment(
    *,
    sizes: Sequence[int] = (200, 400, 800),
    diameters: Sequence[int] = (4, 6),
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 13,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E3: measured dilation vs. the ``O(k_D log n)`` bound (Theorem 3.1).

    The induced part diameter (the dilation with no shortcut at all) is
    reported alongside, showing how much the sampled edges shorten the parts.
    """
    tasks, reduce = plan_dilation_experiment(
        sizes=sizes, diameters=diameters, kind=kind, log_factor=log_factor, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# E4: baselines and lower bound
# ----------------------------------------------------------------------
def _baseline_cell(
    *, kind: str, n: int, diameter_value: int, log_factor: float, seed: int
) -> list:
    """E4 cell: every engine on one (diameter, size) workload."""
    workload = make_workload(
        kind, n, diameter_value,
        seed=derive_seed(seed, "E4", diameter_value, n, "workload"),
    )
    graph, partition = workload.graph, workload.partition
    n_actual = graph.num_vertices

    def dilation_rng(engine: str) -> int:
        return derive_seed(seed, "E4", diameter_value, n, engine, "dilation")

    kp = build_kogan_parter_shortcut(
        graph, partition, diameter_value=workload.diameter,
        log_factor=log_factor,
        rng=derive_seed(seed, "E4", diameter_value, n, "kp"),
    ).shortcut.quality_report(exact_dilation=False, rng=dilation_rng("kp"))
    kit = build_kitamura_style_shortcut(
        graph, partition, diameter_value=workload.diameter,
        log_factor=log_factor,
        rng=derive_seed(seed, "E4", diameter_value, n, "kitamura"),
    ).shortcut.quality_report(exact_dilation=False, rng=dilation_rng("kitamura"))
    gh = build_ghaffari_haeupler_shortcut(graph, partition).quality_report(
        exact_dilation=False, rng=dilation_rng("gh")
    )
    naive = build_naive_shortcut(graph, partition).quality_report(
        exact_dilation=False, rng=dilation_rng("naive")
    )
    empty = build_empty_shortcut(graph, partition).quality_report(
        exact_dilation=False, rng=dilation_rng("empty")
    )

    return [
        workload.name,
        n_actual,
        workload.diameter,
        round(elkin_lower_bound(n_actual, workload.diameter), 2),
        kp.quality,
        kit.quality,
        gh.quality,
        naive.quality,
        empty.quality,
        round(ghaffari_haeupler_quality(n_actual, workload.diameter), 2),
    ]


def plan_baseline_experiment(
    *,
    sizes: Sequence[int] = (200, 400),
    diameters: Sequence[int] = (4, 6, 8),
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 17,
) -> ExperimentPlan:
    """Plan E4: one cell per (diameter, size)."""
    tasks = [
        CellTask("E4", dict(kind=kind, n=n, diameter_value=diameter_value,
                            log_factor=log_factor, seed=seed))
        for diameter_value in diameters
        for n in sizes
    ]
    return tasks, _rows_reducer(
        experiment_id="E4",
        title="Shortcut quality: KP vs baselines vs Elkin lower bound",
        headers=[
            "workload", "n", "D", "lower_bound", "kp_quality", "kitamura_quality",
            "gh_quality", "naive_quality", "empty_quality", "gh_predicted",
        ],
        notes=[f"kind={kind}, log_factor={log_factor}, seed={seed}"],
    )


def run_baseline_experiment(
    *,
    sizes: Sequence[int] = (200, 400),
    diameters: Sequence[int] = (4, 6, 8),
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 17,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E4: KP vs Ghaffari-Haeupler vs Kitamura-style vs naive/empty baselines.

    Also reports the Elkin lower-bound value ``k_D`` and the predicted GH
    quality ``sqrt(n) + D`` so the measured values can be placed between the
    two curves.
    """
    tasks, reduce = plan_baseline_experiment(
        sizes=sizes, diameters=diameters, kind=kind, log_factor=log_factor, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# E5: distributed construction rounds
# ----------------------------------------------------------------------
def _distributed_cell(
    *, kind: str, n: int, diameter_value: int, log_factor: float,
    known_diameter: bool, seed: int,
) -> list:
    """E5 cell: one CONGEST construction at one size."""
    workload = make_workload(
        kind, n, diameter_value, seed=derive_seed(seed, "E5", n, "workload")
    )
    result = build_distributed_kogan_parter(
        workload.graph,
        workload.partition,
        diameter_value=workload.diameter,
        known_diameter=known_diameter,
        log_factor=log_factor,
        rng=derive_seed(seed, "E5", n, "distributed"),
    )
    n_actual = workload.graph.num_vertices
    predicted = max(1.0, predicted_rounds_distributed(n_actual, workload.diameter))
    return [
        workload.name,
        n_actual,
        workload.diameter,
        result.total_rounds,
        result.rounds_breakdown.get("concurrent_bfs", 0),
        round(predicted, 1),
        round(result.total_rounds / predicted, 3),
        result.spanning_ok,
    ]


def plan_distributed_experiment(
    *,
    sizes: Sequence[int] = (60, 120, 240),
    diameter_value: int = 6,
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    known_diameter: bool = True,
    seed: int = 19,
) -> ExperimentPlan:
    """Plan E5: one cell per size."""
    tasks = [
        CellTask("E5", dict(kind=kind, n=n, diameter_value=diameter_value,
                            log_factor=log_factor, known_diameter=known_diameter,
                            seed=seed))
        for n in sizes
    ]
    return tasks, _rows_reducer(
        experiment_id="E5",
        title="Distributed construction rounds vs predicted k_D log^2 n (Section 2)",
        headers=[
            "workload", "n", "D", "rounds", "bfs_rounds", "predicted", "ratio", "spanning",
        ],
        notes=[
            f"kind={kind}, log_factor={log_factor}, known_diameter={known_diameter}, seed={seed}",
            "bfs_rounds = measured rounds of the concurrent random-delay BFS stage",
        ],
    )


def run_distributed_experiment(
    *,
    sizes: Sequence[int] = (60, 120, 240),
    diameter_value: int = 6,
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    known_diameter: bool = True,
    seed: int = 19,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E5: rounds of the CONGEST shortcut construction vs ``~O(k_D)``."""
    tasks, reduce = plan_distributed_experiment(
        sizes=sizes, diameter_value=diameter_value, kind=kind,
        log_factor=log_factor, known_diameter=known_diameter, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# E6: MST
# ----------------------------------------------------------------------
def _mst_cell(
    *, kind: str, n: int, diameter_value: int, log_factor: float, seed: int
) -> list:
    """E6 cell: Boruvka with all three engines on one weighted workload."""
    weighted, diameter_actual = make_weighted_workload(
        kind, n, diameter_value, seed=derive_seed(seed, "E6", n, "workload")
    )
    _, kruskal_weight = kruskal_mst(weighted)

    kp_factory = default_shortcut_factory(
        diameter_value=diameter_actual, log_factor=log_factor,
        rng=derive_seed(seed, "E6", n, "kp"),
    )
    kp = boruvka_mst(
        weighted, shortcut_factory=kp_factory,
        rng=derive_seed(seed, "E6", n, "kp_quality"),
    )

    gh_rng = derive_rng(seed, "E6", n, "gh_build")

    def gh_factory(graph, partition):
        shortcut = build_ghaffari_haeupler_shortcut(graph, partition)
        quality = shortcut.quality_report(exact_dilation=False, rng=gh_rng)
        return shortcut, estimate_aggregation_rounds(quality, graph.num_vertices)

    gh = boruvka_mst(
        weighted, shortcut_factory=gh_factory,
        rng=derive_seed(seed, "E6", n, "gh_quality"),
    )

    naive_rng = derive_rng(seed, "E6", n, "naive_build")

    def naive_factory(graph, partition):
        shortcut = build_naive_shortcut(graph, partition)
        quality = shortcut.quality_report(exact_dilation=False, rng=naive_rng)
        return shortcut, estimate_aggregation_rounds(quality, graph.num_vertices)

    naive = boruvka_mst(
        weighted, shortcut_factory=naive_factory,
        rng=derive_seed(seed, "E6", n, "naive_quality"),
    )

    matches = (
        abs(kp.weight - kruskal_weight) < 1e-6
        and abs(gh.weight - kruskal_weight) < 1e-6
        and abs(naive.weight - kruskal_weight) < 1e-6
    )
    return [
        kind,
        weighted.num_vertices,
        diameter_actual,
        kp.total_rounds,
        gh.total_rounds,
        naive.total_rounds,
        kp.phases,
        matches,
    ]


def plan_mst_experiment(
    *,
    sizes: Sequence[int] = (100, 200, 400),
    diameter_value: int = 6,
    kind: str = "hub",
    log_factor: float = 0.25,
    seed: int = 23,
) -> ExperimentPlan:
    """Plan E6: one cell per size."""
    tasks = [
        CellTask("E6", dict(kind=kind, n=n, diameter_value=diameter_value,
                            log_factor=log_factor, seed=seed))
        for n in sizes
    ]
    return tasks, _rows_reducer(
        experiment_id="E6",
        title="MST rounds with different shortcut engines (Corollary 1.2)",
        headers=[
            "workload", "n", "D", "kp_rounds", "gh_rounds", "naive_rounds",
            "phases", "weight_matches_kruskal",
        ],
        notes=[f"kind={kind}, log_factor={log_factor}, seed={seed}"],
    )


def run_mst_experiment(
    *,
    sizes: Sequence[int] = (100, 200, 400),
    diameter_value: int = 6,
    kind: str = "hub",
    log_factor: float = 0.25,
    seed: int = 23,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E6: Boruvka-over-shortcuts MST — correctness and charged rounds per engine."""
    tasks, reduce = plan_mst_experiment(
        sizes=sizes, diameter_value=diameter_value, kind=kind,
        log_factor=log_factor, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# E7: approximate min-cut
# ----------------------------------------------------------------------
def _mincut_cell(*, half: int, cut_k: int, log_factor: float, seed: int) -> list:
    """E7 cell: one planted-cut instance."""
    graph = planted_cut_graph(
        half, cut_k, rng=derive_seed(seed, "E7", half, cut_k, "graph")
    )
    exact_value, _ = stoer_wagner_min_cut(graph)
    factory = default_shortcut_factory(
        log_factor=log_factor, rng=derive_seed(seed, "E7", half, cut_k, "factory")
    )
    approx = approximate_min_cut(
        graph, epsilon=0.5, num_trees=4, shortcut_factory=factory,
        rng=derive_seed(seed, "E7", half, cut_k, "approx"),
    )
    ratio = approx.value / exact_value if exact_value else float("inf")
    return [
        graph.num_vertices,
        cut_k,
        exact_value,
        approx.value,
        round(ratio, 3),
        approx.num_trees,
        approx.total_rounds,
    ]


def plan_mincut_experiment(
    *,
    half_sizes: Sequence[int] = (30, 50),
    cut_edges: Sequence[int] = (3, 6),
    seed: int = 29,
    log_factor: float = 0.25,
) -> ExperimentPlan:
    """Plan E7: one cell per (half size, planted cut size)."""
    tasks = [
        CellTask("E7", dict(half=half, cut_k=k, log_factor=log_factor, seed=seed))
        for half in half_sizes
        for k in cut_edges
    ]
    return tasks, _rows_reducer(
        experiment_id="E7",
        title="Approximate min-cut vs exact (Corollary 1.2)",
        headers=[
            "n", "planted_cut", "exact", "approx", "ratio", "trees", "rounds",
        ],
        notes=[f"seed={seed}, log_factor={log_factor}"],
    )


def run_mincut_experiment(
    *,
    half_sizes: Sequence[int] = (30, 50),
    cut_edges: Sequence[int] = (3, 6),
    seed: int = 29,
    log_factor: float = 0.25,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E7: approximate min-cut value and rounds on planted-cut instances."""
    tasks, reduce = plan_mincut_experiment(
        half_sizes=half_sizes, cut_edges=cut_edges, seed=seed, log_factor=log_factor,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# E8: SSSP and 2-ECSS
# ----------------------------------------------------------------------
def _applications_cell(
    *, kind: str, n: int, diameter_value: int, log_factor: float, seed: int
) -> list:
    """E8 cell: SSSP and 2-ECSS on one size point."""
    workload = make_workload(
        kind, n, diameter_value, seed=derive_seed(seed, "E8", n, "workload")
    )
    weighted = with_random_weights(
        workload.graph, rng=derive_seed(seed, "E8", n, "weights")
    )
    partition = workload.partition
    kp = build_kogan_parter_shortcut(
        weighted, partition, diameter_value=workload.diameter,
        log_factor=log_factor, rng=derive_seed(seed, "E8", n, "sample"),
    ).shortcut

    source = 0
    sssp = shortcut_accelerated_sssp(
        weighted, source, kp, max_phases=8,
        rng=derive_seed(seed, "E8", n, "sssp_quality"),
    )
    baseline = bellman_ford(weighted, source, max_hops=sssp.phases)
    exact = dijkstra(weighted, source)
    bf_stretch = 1.0
    for v, d_exact in exact.items():
        if d_exact == 0:
            continue
        d_apx = baseline.get(v, float("inf"))
        bf_stretch = max(bf_stretch, d_apx / d_exact if d_apx != float("inf") else float("inf"))

    # The 2-ECSS experiment needs a 2-edge-connected input (bridges of the
    # input can never be covered); the planted-cut family is
    # 2-edge-connected by construction whenever it has >= 2 crossing edges.
    ecss_graph = planted_cut_graph(
        max(10, n // 2), 4, rng=derive_seed(seed, "E8", n, "ecss_graph")
    )
    factory = default_shortcut_factory(
        log_factor=log_factor, rng=derive_seed(seed, "E8", n, "ecss_factory")
    )
    ecss = two_ecss_approximation(
        ecss_graph, shortcut_factory=factory,
        rng=derive_seed(seed, "E8", n, "ecss_quality"),
    )
    weight_ratio = ecss.weight / ecss.mst_weight if ecss.mst_weight else float("inf")

    return [
        weighted.num_vertices,
        workload.diameter,
        round(sssp.max_stretch, 3),
        sssp.phases,
        sssp.total_rounds,
        round(bf_stretch, 3) if bf_stretch != float("inf") else float("inf"),
        round(weight_ratio, 3),
        ecss.is_two_edge_connected,
        ecss.total_rounds,
    ]


def plan_applications_experiment(
    *,
    sizes: Sequence[int] = (100, 200),
    diameter_value: int = 6,
    kind: str = "hub",
    log_factor: float = 0.25,
    seed: int = 31,
) -> ExperimentPlan:
    """Plan E8: one cell per size."""
    tasks = [
        CellTask("E8", dict(kind=kind, n=n, diameter_value=diameter_value,
                            log_factor=log_factor, seed=seed))
        for n in sizes
    ]
    return tasks, _rows_reducer(
        experiment_id="E8",
        title="Shortcut-driven SSSP and 2-ECSS (Corollaries 4.2, 4.3)",
        headers=[
            "n", "D", "sssp_stretch", "sssp_phases", "sssp_rounds",
            "bf_baseline_stretch", "ecss_weight_ratio", "ecss_2ec", "ecss_rounds",
        ],
        notes=[
            f"kind={kind}, log_factor={log_factor}, seed={seed}",
            "bf_baseline_stretch = stretch of plain Bellman-Ford run for the same number of phases",
            "ecss_weight_ratio = 2-ECSS weight / MST weight (MST is a lower bound on OPT)",
        ],
    )


def run_applications_experiment(
    *,
    sizes: Sequence[int] = (100, 200),
    diameter_value: int = 6,
    kind: str = "hub",
    log_factor: float = 0.25,
    seed: int = 31,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E8: SSSP stretch/rounds and 2-ECSS weight/rounds over KP shortcuts."""
    tasks, reduce = plan_applications_experiment(
        sizes=sizes, diameter_value=diameter_value, kind=kind,
        log_factor=log_factor, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# E9: shortcut trees / Lemma 3.3
# ----------------------------------------------------------------------
def _shortcut_tree_cell(
    *, n: int, diameter_value: int, path_length: int, trials: int,
    sampling_p: float, seed: int,
) -> Optional[list]:
    """E9 cell: all trials of one (size, sampling probability) point.

    The auxiliary tree is deterministic given ``n``; each trial draws from
    its own derived stream so any single trial can be reproduced alone.
    Returns ``None`` when the instance admits no usable path.
    """
    inst = _cached_lower_bound_instance(n, diameter_value)
    graph = inst.graph
    part = sorted(inst.parts[0])
    endpoints = (part[0], part[min(path_length, len(part) - 1)])
    path = shortest_path(graph, endpoints[0], endpoints[1])
    if path is None or len(path) < 3:
        return None
    ell = diameter_value // 2
    q_nodes = set(list(inst.tree_vertices)[: max(2, len(inst.tree_vertices) // 4)])
    tree = ShortcutTree(graph, path, q_nodes, ell=ell)
    n_actual = graph.num_vertices
    k_d = k_d_value(n_actual, diameter_value)
    lemma_p = min(1.0, k_d / max(n_actual / k_d, 1.0))
    budget = max(4.0, 4.0 * k_d * math.log(max(n_actual, 2)))
    top_layer = ell + 1
    successes = 0
    top_distances = []
    for t in range(trials):
        analysis = tree.analyze(
            probability=sampling_p,
            rng=derive_rng(seed, "E9", n, sampling_p, t),
            diameter_value=diameter_value,
        )
        reach = min(
            [analysis.distance_to_end]
            + list(analysis.distance_to_layer.values())
        )
        top = analysis.distance_to_layer.get(top_layer, float("inf"))
        top_distances.append(min(top, 10 * budget))
        if reach <= budget:
            successes += 1
    return [
        n_actual,
        diameter_value,
        ell,
        round(sampling_p, 3),
        round(lemma_p, 3),
        round(successes / trials, 3),
        round(statistics.mean(top_distances), 2),
        round(budget, 1),
    ]


def plan_shortcut_tree_experiment(
    *,
    sizes: Sequence[int] = (200, 400),
    diameter_value: int = 6,
    path_length: int = 12,
    trials: int = 20,
    probabilities: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.8),
    seed: int = 37,
) -> ExperimentPlan:
    """Plan E9: one cell per (size, sampling probability)."""
    tasks = [
        CellTask("E9", dict(n=n, diameter_value=diameter_value,
                            path_length=path_length, trials=trials,
                            sampling_p=sampling_p, seed=seed))
        for n in sizes
        for sampling_p in probabilities
    ]
    return tasks, _rows_reducer(
        experiment_id="E9",
        title="Shortcut trees: empirical success of Lemma 3.3 walk bounds",
        headers=[
            "n", "D", "ell", "sampling_p", "lemma_p", "success_rate",
            "mean_top_layer_dist", "budget",
        ],
        notes=[f"trials={trials}, seed={seed}"],
    )


def run_shortcut_tree_experiment(
    *,
    sizes: Sequence[int] = (200, 400),
    diameter_value: int = 6,
    path_length: int = 12,
    trials: int = 20,
    probabilities: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.8),
    seed: int = 37,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E9: empirical (i, k)-walk reach in sampled shortcut trees (Lemma 3.3).

    For each instance a shortest path ``P`` inside one part and a target set
    ``Q`` (the connector core) define the auxiliary tree; the table sweeps
    the non-self-edge sampling probability and reports how often the start
    of the path reaches the path end or the top layer within the lemma's
    length budget, plus the mean distance to the top layer.  The lemma's
    threshold probability ``~k_D / N`` should show up as the point where the
    success rate saturates.
    """
    tasks, reduce = plan_shortcut_tree_experiment(
        sizes=sizes, diameter_value=diameter_value, path_length=path_length,
        trials=trials, probabilities=probabilities, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# E10-E12: ablations
# ----------------------------------------------------------------------
def _distributed_mst_cell(
    *, n: int, diameter_value: int, log_factor: float, seed: int
) -> list:
    """E10 cell: shortcut vs induced-only distributed Boruvka at one size."""
    from ..applications.distributed_mst import distributed_boruvka_mst

    inst = _cached_lower_bound_instance(n, diameter_value)
    weighted = with_random_weights(
        inst.graph, rng=derive_seed(seed, "E10", n, "weights")
    )
    with_sc = distributed_boruvka_mst(
        weighted, use_shortcuts=True, diameter_value=diameter_value,
        log_factor=log_factor, rng=derive_seed(seed, "E10", n, "shortcut"),
    )
    without_sc = distributed_boruvka_mst(
        weighted, use_shortcuts=False, rng=derive_seed(seed, "E10", n, "induced")
    )
    _, kruskal_weight = kruskal_mst(weighted)
    weight_ok = (
        abs(with_sc.weight - kruskal_weight) < 1e-6
        and abs(without_sc.weight - kruskal_weight) < 1e-6
    )
    return [
        inst.graph.num_vertices,
        diameter_value,
        weight_ok,
        with_sc.phases,
        max(with_sc.simulated_rounds_per_phase, default=0),
        max(without_sc.simulated_rounds_per_phase, default=0),
        sum(with_sc.simulated_rounds_per_phase),
        sum(without_sc.simulated_rounds_per_phase),
    ]


def plan_distributed_mst_experiment(
    *,
    sizes: Sequence[int] = (80, 140),
    diameter_value: int = 6,
    log_factor: float = 0.3,
    seed: int = 41,
) -> ExperimentPlan:
    """Plan E10: one cell per size."""
    tasks = [
        CellTask("E10", dict(n=n, diameter_value=diameter_value,
                             log_factor=log_factor, seed=seed))
        for n in sizes
    ]
    return tasks, _rows_reducer(
        experiment_id="E10",
        title="Simulated distributed MST: shortcut vs induced-only fragment trees",
        headers=[
            "n", "D", "weight_ok", "phases",
            "max_phase_rounds_shortcut", "max_phase_rounds_induced",
            "total_rounds_shortcut", "total_rounds_induced",
        ],
        notes=[f"log_factor={log_factor}, seed={seed}; rounds columns are the simulated MWOE stages"],
    )


def run_distributed_mst_experiment(
    *,
    sizes: Sequence[int] = (80, 140),
    diameter_value: int = 6,
    log_factor: float = 0.3,
    seed: int = 41,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E10: simulated distributed Boruvka — shortcut-augmented vs induced-only trees.

    The MWOE stage of every Boruvka phase runs on the CONGEST simulator; the
    table compares the maximum per-phase simulated rounds when the fragment
    trees are grown over Kogan-Parter augmented subgraphs against the
    no-shortcut baseline, on lower-bound instances whose fragments become
    long paths.
    """
    tasks, reduce = plan_distributed_mst_experiment(
        sizes=sizes, diameter_value=diameter_value, log_factor=log_factor, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


def _repetition_cell(
    *, n: int, diameter_value: int, repetitions: int, log_factor: float,
    seed: int, trial: int,
) -> tuple:
    """E11 cell: one sampling trial at one repetition count."""
    inst = _cached_lower_bound_instance(n, diameter_value)
    partition = Partition(inst.graph, inst.parts, validate=False)
    result = build_kogan_parter_shortcut(
        inst.graph,
        partition,
        diameter_value=diameter_value,
        repetitions=repetitions,
        log_factor=log_factor,
        rng=derive_seed(seed, "E11", repetitions, trial, "sample"),
    )
    report = result.shortcut.quality_report(
        exact_dilation=False,
        rng=derive_seed(seed, "E11", repetitions, trial, "dilation"),
    )
    return (inst.graph.num_vertices, report.congestion, report.dilation)


def plan_repetition_ablation(
    *,
    n: int = 400,
    diameter_value: int = 6,
    repetition_choices: Sequence[int] = (1, 2, 3, 6, 12),
    log_factor: float = 0.25,
    trials: int = 5,
    seed: int = 43,
) -> ExperimentPlan:
    """Plan E11: one cell per (repetition count, trial)."""
    tasks = [
        CellTask("E11", dict(n=n, diameter_value=diameter_value, repetitions=reps,
                             log_factor=log_factor, seed=seed, trial=t))
        for reps in repetition_choices
        for t in range(trials)
    ]

    def reduce(results: list) -> ExperimentTable:
        table = ExperimentTable(
            experiment_id="E11",
            title="Ablation: number of sampling repetitions vs congestion and dilation",
            headers=["n", "D", "repetitions", "congestion", "dilation", "quality"],
            notes=[f"log_factor={log_factor}, trials={trials}, seed={seed}, workload=lower_bound"],
        )
        it = iter(results)
        for reps in repetition_choices:
            cells = [next(it) for _ in range(trials)]
            n_actual = cells[-1][0]
            congestion = statistics.mean(c[1] for c in cells)
            dilation = statistics.mean(c[2] for c in cells)
            table.add_row(
                n_actual,
                diameter_value,
                reps,
                round(congestion, 2),
                round(dilation, 2),
                round(congestion + dilation, 2),
            )
        return table

    return tasks, reduce


def run_repetition_ablation(
    *,
    n: int = 400,
    diameter_value: int = 6,
    repetition_choices: Sequence[int] = (1, 2, 3, 6, 12),
    log_factor: float = 0.25,
    trials: int = 5,
    seed: int = 43,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E11: ablation of the number of sampling repetitions (Step 3).

    The paper repeats the edge sampling D times; the recursion of the
    dilation argument consumes one repetition per level.  The ablation
    varies the repetition count while keeping the per-repetition probability
    fixed and reports the resulting congestion / dilation trade-off,
    averaged over ``trials`` independent samplings (a single sampling is
    noisy because the dilation is a maximum over parts).
    """
    tasks, reduce = plan_repetition_ablation(
        n=n, diameter_value=diameter_value, repetition_choices=repetition_choices,
        log_factor=log_factor, trials=trials, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


def _probability_cell(
    *, n: int, diameter_value: int, log_factor: float, seed: int
) -> list:
    """E12 cell: one sampling probability point."""
    inst = _cached_lower_bound_instance(n, diameter_value)
    partition = Partition(inst.graph, inst.parts, validate=False)
    result = build_kogan_parter_shortcut(
        inst.graph,
        partition,
        diameter_value=diameter_value,
        log_factor=log_factor,
        rng=derive_seed(seed, "E12", log_factor, "sample"),
    )
    report = result.shortcut.quality_report(
        exact_dilation=False,
        rng=derive_seed(seed, "E12", log_factor, "dilation"),
    )
    return [
        inst.graph.num_vertices,
        diameter_value,
        log_factor,
        round(result.parameters.probability, 4),
        report.congestion,
        report.dilation,
        report.quality,
    ]


def plan_probability_ablation(
    *,
    n: int = 400,
    diameter_value: int = 6,
    log_factors: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 1.0),
    seed: int = 47,
) -> ExperimentPlan:
    """Plan E12: one cell per log_factor."""
    tasks = [
        CellTask("E12", dict(n=n, diameter_value=diameter_value,
                             log_factor=factor, seed=seed))
        for factor in log_factors
    ]
    return tasks, _rows_reducer(
        experiment_id="E12",
        title="Ablation: sampling probability vs congestion/dilation trade-off",
        headers=["n", "D", "log_factor", "probability", "congestion", "dilation", "quality"],
        notes=[f"seed={seed}, workload=lower_bound"],
    )


def run_probability_ablation(
    *,
    n: int = 400,
    diameter_value: int = 6,
    log_factors: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 1.0),
    seed: int = 47,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E12: ablation of the sampling probability (via the log_factor knob).

    Larger probabilities lower the dilation and raise the congestion; the
    paper's choice p = k_D log n / N balances the two at ~k_D log n each.
    The table reports the measured trade-off, including the degenerate
    clamped regime (probability 1) where the construction coincides with the
    naive shortcut.
    """
    tasks, reduce = plan_probability_ablation(
        n=n, diameter_value=diameter_value, log_factors=log_factors, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# E13: distributed construction at scale
# ----------------------------------------------------------------------
def _distributed_scale_cell(
    *, kind: str, n: int, diameter_value: int, log_factor: float,
    known_diameter: bool, seed: int,
) -> list:
    """E13 cell: one at-scale construction (wall time measured in-cell)."""
    workload = make_workload(
        kind, n, diameter_value, seed=derive_seed(seed, "E13", n, "workload")
    )
    # E13 measures wall time on purpose; the table declares ``wall_s`` in
    # ``nondeterministic_columns`` so determinism pins skip it.
    start = time.perf_counter()  # repro: noqa[RPR003] declared wall_s column
    result = build_distributed_kogan_parter(
        workload.graph,
        workload.partition,
        diameter_value=None if not known_diameter else workload.diameter,
        known_diameter=known_diameter,
        log_factor=log_factor,
        rng=derive_seed(seed, "E13", n, "distributed"),
    )
    wall = time.perf_counter() - start  # repro: noqa[RPR003] declared wall_s column
    bfs = result.bfs_metrics
    return [
        workload.name,
        workload.graph.num_vertices,
        workload.graph.num_edges,
        result.accepted_guess,
        len(result.attempted_guesses),
        result.probe_rounds,
        result.total_rounds,
        result.rounds_breakdown.get("concurrent_bfs", 0),
        bfs.messages_delivered if bfs is not None else 0,
        round(wall, 3),
        result.spanning_ok,
    ]


def plan_distributed_scale_experiment(
    *,
    sizes: Sequence[int] = (1_000, 3_000, 10_000),
    diameter_value: int = 6,
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    known_diameter: bool = False,
    seed: int = 53,
) -> ExperimentPlan:
    """Plan E13: one cell per size."""
    tasks = [
        CellTask("E13", dict(kind=kind, n=n, diameter_value=diameter_value,
                             log_factor=log_factor, known_diameter=known_diameter,
                             seed=seed))
        for n in sizes
    ]
    return tasks, _rows_reducer(
        experiment_id="E13",
        title="Distributed construction at scale (fully simulated CSR-mask pipeline)",
        headers=[
            "workload", "n", "m", "D_guess", "guesses", "probe_rounds",
            "rounds", "bfs_rounds", "bfs_messages", "wall_s", "spanning",
        ],
        notes=[
            f"kind={kind}, log_factor={log_factor}, known_diameter={known_diameter}, seed={seed}",
            "all rounds_breakdown stages are simulated; guesses = attempted diameter guesses "
            "(geometric doubling from the measured BFS 2-approximation)",
        ],
        nondeterministic_columns=["wall_s"],
    )


def run_distributed_scale_experiment(
    *,
    sizes: Sequence[int] = (1_000, 3_000, 10_000),
    diameter_value: int = 6,
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    known_diameter: bool = False,
    seed: int = 53,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E13: the fully simulated distributed construction at 10k-node scale.

    Sweeps the CSR-mask pipeline (every stage of ``rounds_breakdown``
    measured, unknown-diameter guessing by default) over instance sizes the
    dict-of-sets driver could not reach interactively, reporting rounds,
    guesses, message volume of the round-dominant stage and wall time.
    """
    tasks, reduce = plan_distributed_scale_experiment(
        sizes=sizes, diameter_value=diameter_value, kind=kind,
        log_factor=log_factor, known_diameter=known_diameter, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# E14: shortcut-routed vs raw part-tree aggregation
# ----------------------------------------------------------------------
def _aggregation_routing_cell(
    *, family: str, size: int, log_factor: float, seed: int
) -> list:
    """E14 cell: shortcut-routed vs raw aggregation on one workload."""
    from ..congest.primitives.aggregation import aggregate_over_shortcut
    from ..graphs.generators import broom_graph, caterpillar_graph

    if family == "broom":
        graph = broom_graph(size, max(1, size // 2), hub=True)
        parts = [set(range(size))]
        diameter_value = 4
    elif family == "caterpillar":
        graph = caterpillar_graph(size, 1, hub=True)
        parts = [set(range(size))]
        diameter_value = 4
    elif family == "lower_bound":
        inst = lower_bound_instance(size * 5, 6)
        graph = inst.graph
        parts = inst.parts
        diameter_value = inst.diameter
    else:
        raise ValueError(f"unknown E14 family {family!r}")
    partition = Partition(graph, parts, validate=False)
    shortcut = build_kogan_parter_shortcut(
        graph, partition, diameter_value=diameter_value,
        log_factor=log_factor, rng=derive_seed(seed, "E14", family, size, "sample"),
    ).shortcut
    raw = build_empty_shortcut(graph, partition)
    values = {v: v for v in partition.covered_vertices()}
    # Both routings draw their scheduler delays from the same derived seed,
    # so the comparison isolates the tree structure, not the delay draws.
    agg_seed = derive_seed(seed, "E14", family, size, "aggregate")
    routed = aggregate_over_shortcut(shortcut, values, "min", rng=agg_seed)
    bare = aggregate_over_shortcut(raw, values, "min", rng=agg_seed)
    return [
        family,
        graph.num_vertices,
        max(len(p) for p in parts),
        diameter_value,
        routed.rounds,
        bare.rounds,
        round(bare.rounds / max(routed.rounds, 1), 2),
        routed.values == bare.values,
    ]


def plan_aggregation_routing_experiment(
    *,
    part_sizes: Sequence[int] = (40, 80, 160),
    families: Sequence[str] = ("broom", "caterpillar", "lower_bound"),
    log_factor: float = 1.0,
    seed: int = 59,
) -> ExperimentPlan:
    """Plan E14: one cell per (family, part size)."""
    tasks = [
        CellTask("E14", dict(family=family, size=size, log_factor=log_factor, seed=seed))
        for family in families
        for size in part_sizes
    ]
    return tasks, _rows_reducer(
        experiment_id="E14",
        title="Part-wise aggregation rounds: shortcut-routed vs raw part trees",
        headers=[
            "family", "n", "part_size", "D", "rounds_shortcut", "rounds_raw",
            "speedup", "values_equal",
        ],
        notes=[
            f"log_factor={log_factor}, seed={seed}; rounds are the measured "
            "two-stage fleet (concurrent masked BFS + PartAggregation "
            "convergecast/broadcast), op=min over node ids",
        ],
    )


def run_aggregation_routing_experiment(
    *,
    part_sizes: Sequence[int] = (40, 80, 160),
    families: Sequence[str] = ("broom", "caterpillar", "lower_bound"),
    log_factor: float = 1.0,
    seed: int = 59,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E14: rounds of one part-wise aggregation, shortcut-routed vs raw trees.

    The quantity Theorem 1.1 is *for*: the same part-wise min aggregation
    (the MWOE/hooking step of every consumer phase) is executed twice on
    the CONGEST simulator — once over Kogan-Parter augmented part trees,
    once over the bare induced part trees — and the measured two-stage
    rounds are compared.  Workloads are the worst-case long-path parts: a
    broom handle and a caterpillar spine embedded in a constant-diameter
    hub host, and the Elkin/Das-Sarma lower-bound instance with its
    canonical path parts.
    """
    tasks, reduce = plan_aggregation_routing_experiment(
        part_sizes=part_sizes, families=families, log_factor=log_factor, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# E15: fault tolerance — surviving shortcuts and consumers under faults
# ----------------------------------------------------------------------
def _fault_tolerance_cell(
    *, family: str, size: int, drop_rate: float, crashes: int, seed: int
) -> list:
    """E15 cell: one (family, drop rate, crash count) fault workload.

    Three measurements per cell:

    * **surviving shortcut quality** — build the Kogan-Parter shortcut,
      then project the fault pattern onto it (every shortcut edge incident
      to a crash victim dies, every other edge survives a Bernoulli drop)
      and re-measure congestion/dilation of what survives;
    * **MST consumer** — :func:`~repro.applications.shortcut_mst.
      shortcut_boruvka_mst` with the same fault knobs, checked against
      Kruskal;
    * **components consumer** — :func:`~repro.applications.components.
      shortcut_connected_components` on a two-block disjoint union of the
      family, checked against the sequential traversal.

    Fault-degraded consumer runs (possible once ``crashes > 0``) surface
    as ``ok=False`` rows — the row the fault sweep is *about* — never as
    exceptions: a stalled stage's
    :class:`~repro.congest.network.PartialRunError` is caught and its
    partial metrics folded into the round count.
    """
    from ..applications.components import shortcut_connected_components
    from ..applications.shortcut_mst import shortcut_boruvka_mst
    from ..congest.network import PartialRunError
    from ..graphs.components import connected_components
    from ..graphs.generators import GENERATOR_FAMILIES, disjoint_union, make_family_graph
    from ..shortcuts.shortcut import Shortcut

    if family not in GENERATOR_FAMILIES:
        raise ValueError(f"unknown E15 family {family!r}")
    graph = make_family_graph(
        family, size, rng=derive_rng(seed, "E15", family, size, "graph")
    )
    n = graph.num_vertices

    # --- surviving-shortcut quality ---------------------------------
    num_parts = max(2, n // 16)
    parts = singleton_free(random_connected_partition(
        graph, num_parts, rng=derive_rng(seed, "E15", family, size, "parts"),
        cover_all=True,
    ))
    partition = Partition(graph, parts, validate=False)
    shortcut = build_kogan_parter_shortcut(
        graph, partition,
        rng=derive_rng(seed, "E15", family, size, "sample"),
    ).shortcut
    fault_rng = derive_rng(seed, "E15", family, size, "survive")
    victims = set(fault_rng.sample(range(n), crashes)) if crashes else set()
    edge_list = graph.csr().edge_list
    surviving_ids = []
    total_edges = 0
    lost_edges = 0
    for i in range(partition.num_parts):
        ids = shortcut.subgraph_edge_ids(i)
        total_edges += len(ids)
        kept = set()
        for eid in ids:
            u, v = edge_list[eid]
            if u in victims or v in victims:
                continue
            if drop_rate and fault_rng.random() < drop_rate:
                continue
            kept.add(eid)
        lost_edges += len(ids) - len(kept)
        surviving_ids.append(kept)
    survived = Shortcut.from_edge_ids(partition, surviving_ids)
    report = survived.quality_report(exact_dilation=False, rng=fault_rng)

    # --- MST consumer under live faults -----------------------------
    weighted = with_random_weights(
        graph, rng=derive_rng(seed, "E15", family, size, "weights")
    )
    _, kruskal_weight = kruskal_mst(weighted)
    try:
        mst = shortcut_boruvka_mst(
            weighted,
            rng=derive_rng(seed, "E15", family, size, "mst"),
            drop_rate=drop_rate, crashes=crashes,
            adversary_seed=derive_seed(seed, "E15", family, size, "mst-adv"),
            recover_after=16,
        )
        mst_rounds = mst.total_rounds
        mst_phases = mst.phases
        mst_ok = abs(mst.weight - kruskal_weight) < 1e-6
    except PartialRunError as stall:
        mst_rounds = stall.metrics.rounds if stall.metrics is not None else -1
        mst_phases = -1
        mst_ok = False

    # --- components consumer on a disconnected workload -------------
    half = max(4, size // 2)
    blocks = [
        make_family_graph(family, half,
                          rng=derive_rng(seed, "E15", family, size, "block", b))
        for b in range(2)
    ]
    comp_graph = disjoint_union(blocks)
    expected_labels = [0] * comp_graph.num_vertices
    comps = connected_components(comp_graph)
    for comp in comps:
        leader = min(comp)
        for v in comp:
            expected_labels[v] = leader
    try:
        comp = shortcut_connected_components(
            comp_graph,
            rng=derive_rng(seed, "E15", family, size, "components"),
            drop_rate=drop_rate, crashes=crashes,
            adversary_seed=derive_seed(seed, "E15", family, size, "comp-adv"),
            recover_after=16,
        )
        comp_rounds = comp.total_rounds
        comp_ok = (comp.labels == expected_labels
                   and comp.num_components == len(comps))
    except PartialRunError as stall:
        comp_rounds = stall.metrics.rounds if stall.metrics is not None else -1
        comp_ok = False

    return [
        family,
        n,
        drop_rate,
        crashes,
        total_edges,
        lost_edges,
        report.congestion,
        report.dilation,
        mst_rounds,
        mst_phases,
        mst_ok,
        comp_rounds,
        comp_ok,
    ]


def plan_fault_tolerance_experiment(
    *,
    families: Optional[Sequence[str]] = None,
    size: int = 96,
    drop_rates: Sequence[float] = (0.0, 0.05, 0.15),
    crash_counts: Sequence[int] = (0, 2),
    seed: int = 61,
) -> ExperimentPlan:
    """Plan E15: one cell per (family, drop rate, crash count)."""
    if families is None:
        from ..graphs.generators import GENERATOR_FAMILIES

        families = tuple(sorted(GENERATOR_FAMILIES))
    tasks = [
        CellTask("E15", dict(family=family, size=size, drop_rate=drop_rate,
                             crashes=crashes, seed=seed))
        for family in families
        for drop_rate in drop_rates
        for crashes in crash_counts
    ]
    return tasks, _rows_reducer(
        experiment_id="E15",
        title="Fault sweep: surviving shortcut quality and consumer rounds",
        headers=[
            "family", "n", "drop_rate", "crashes", "shortcut_edges",
            "edges_lost", "surv_congestion", "surv_dilation",
            "mst_rounds", "mst_phases", "mst_ok", "comp_rounds", "comp_ok",
        ],
        notes=[
            f"size={size}, seed={seed}; surviving quality projects the fault "
            "pattern onto the built shortcut (crash-incident edges die, the "
            "rest survive Bernoulli drops; dilation inf = a part got "
            "disconnected); consumer columns run the live fault stack "
            "(retry/ack protocols, per-phase adversaries, recover_after=16) "
            "and check exactness against the sequential oracles",
        ],
    )


def run_fault_tolerance_experiment(
    *,
    families: Optional[Sequence[str]] = None,
    size: int = 96,
    drop_rates: Sequence[float] = (0.0, 0.05, 0.15),
    crash_counts: Sequence[int] = (0, 2),
    seed: int = 61,
    workers: Optional[int] = None,
) -> ExperimentTable:
    """E15: what survives an adversarial CONGEST network.

    The robustness closing of the pipeline: every other experiment assumes
    fault-free delivery, and this one measures the same artifacts —
    shortcut quality and consumer rounds — as messages drop and nodes
    crash.  Zero-fault rows double as the identity pin (``mst_ok`` and
    ``comp_ok`` must hold there by the adversary-free oracle tests); at
    positive drop rates the ack/retry protocol stack keeps the consumers
    exact while the round counts expose the retransmission cost; crash
    rows show graceful degradation (lost aggregates retry next phase, and
    ``ok`` may honestly turn ``False``).
    """
    tasks, reduce = plan_fault_tolerance_experiment(
        families=families, size=size, drop_rates=drop_rates,
        crash_counts=crash_counts, seed=seed,
    )
    return reduce(run_cells(tasks, workers=workers))


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------
#: All experiment runners, keyed by experiment id (used by the CLI example
#: and the benchmark suite).
EXPERIMENT_RUNNERS: dict[str, Callable[..., ExperimentTable]] = {
    "E1": run_quality_experiment,
    "E2": run_congestion_experiment,
    "E3": run_dilation_experiment,
    "E4": run_baseline_experiment,
    "E5": run_distributed_experiment,
    "E6": run_mst_experiment,
    "E7": run_mincut_experiment,
    "E8": run_applications_experiment,
    "E9": run_shortcut_tree_experiment,
    "E10": run_distributed_mst_experiment,
    "E11": run_repetition_ablation,
    "E12": run_probability_ablation,
    "E13": run_distributed_scale_experiment,
    "E14": run_aggregation_routing_experiment,
    "E15": run_fault_tolerance_experiment,
}

#: Planners produce the (cells, reducer) decomposition the parallel
#: executor shards; ``run_all_experiments`` uses them to run every
#: experiment's cells through one shared pool.
EXPERIMENT_PLANNERS: dict[str, Callable[..., ExperimentPlan]] = {
    "E1": plan_quality_experiment,
    "E2": plan_congestion_experiment,
    "E3": plan_dilation_experiment,
    "E4": plan_baseline_experiment,
    "E5": plan_distributed_experiment,
    "E6": plan_mst_experiment,
    "E7": plan_mincut_experiment,
    "E8": plan_applications_experiment,
    "E9": plan_shortcut_tree_experiment,
    "E10": plan_distributed_mst_experiment,
    "E11": plan_repetition_ablation,
    "E12": plan_probability_ablation,
    "E13": plan_distributed_scale_experiment,
    "E14": plan_aggregation_routing_experiment,
    "E15": plan_fault_tolerance_experiment,
}

#: Per-experiment cell runners — the functions worker processes execute.
#: Every entry is a module-level function whose kwargs are primitives, so a
#: :class:`CellTask` pickles cheaply and runs anywhere the package imports.
CELL_RUNNERS: dict[str, Callable[..., object]] = {
    "E1": _quality_cell,
    "E2": _congestion_cell,
    "E3": _dilation_cell,
    "E4": _baseline_cell,
    "E5": _distributed_cell,
    "E6": _mst_cell,
    "E7": _mincut_cell,
    "E8": _applications_cell,
    "E9": _shortcut_tree_cell,
    "E10": _distributed_mst_cell,
    "E11": _repetition_cell,
    "E12": _probability_cell,
    "E13": _distributed_scale_cell,
    "E14": _aggregation_routing_cell,
    "E15": _fault_tolerance_cell,
}


def experiment_id_order(ids: Sequence[str]) -> list[str]:
    """Sort experiment ids numerically (``E2`` before ``E10``).

    A plain ``sorted`` orders lexicographically — E1, E10, E11, ..., E2 —
    which is not "id order" for two-digit experiments.
    """
    return sorted(ids, key=lambda key: int(key.lstrip("E")))


def run_all_experiments(
    *, fast: bool = True, seed: int = 1, workers: Optional[int] = None
) -> list[ExperimentTable]:
    """Run every experiment with (optionally reduced) default parameters.

    All experiments' cells are flattened into one task list and executed
    through a single (optionally parallel) pass, then reduced back into
    per-experiment tables — so a multi-worker run shards the *whole* sweep,
    not one experiment at a time.

    Args:
        fast: use the smaller parameter sets intended for CI / quick runs.
        seed: base RNG seed.
        workers: worker processes for the cell executor (serial when
            ``None``/``0``/``1``; negative means all cores).  Tables are
            bit-identical for every worker count.

    Returns:
        One :class:`ExperimentTable` per experiment, in numeric id order
        (E1, E2, ..., E15).
    """
    if fast:
        overrides: dict[str, dict[str, object]] = {
            "E1": {"sizes": (150, 300), "diameters": (4, 6), "seed": seed},
            "E2": {"sizes": (150, 300), "seed": seed},
            "E3": {"sizes": (150, 300), "diameters": (4, 6), "seed": seed},
            "E4": {"sizes": (150, 300), "diameters": (4, 6), "seed": seed},
            "E5": {"sizes": (60, 120), "seed": seed},
            "E6": {"sizes": (80, 160), "seed": seed},
            "E7": {"half_sizes": (20,), "cut_edges": (3,), "seed": seed},
            "E8": {"sizes": (80,), "seed": seed},
            "E9": {"sizes": (150,), "trials": 10, "seed": seed},
            "E10": {"sizes": (80,), "seed": seed},
            "E11": {"n": 200, "seed": seed},
            "E12": {"n": 200, "seed": seed},
            "E13": {"sizes": (400,), "seed": seed},
            "E14": {"part_sizes": (30, 60), "seed": seed},
            "E15": {"families": ("torus", "hub"), "size": 48,
                    "drop_rates": (0.0, 0.05), "crash_counts": (0,),
                    "seed": seed},
        }
    else:
        # Full tier keeps each experiment's default parameter sets but still
        # honours the base seed (the fast branch overrides it above).
        overrides = {key: {"seed": seed} for key in EXPERIMENT_RUNNERS}
    plans: list[tuple[list[CellTask], Callable[[list], ExperimentTable]]] = []
    for key in experiment_id_order(EXPERIMENT_PLANNERS):
        planner = EXPERIMENT_PLANNERS[key]
        plans.append(planner(**overrides.get(key, {})))
    flat = [task for tasks, _ in plans for task in tasks]
    results = run_cells(flat, workers=workers)
    tables: list[ExperimentTable] = []
    position = 0
    for tasks, reduce in plans:
        tables.append(reduce(results[position:position + len(tasks)]))
        position += len(tasks)
    return tables
