"""Experiment harness: workload generation, sweeps and result tables.

The paper has no experimental section, so the "tables and figures" this
repository reproduces are its quantitative claims (see DESIGN.md §5 and
EXPERIMENTS.md).  Each ``run_*`` function below regenerates one experiment:
it builds the workloads, runs the constructions / applications, and returns
an :class:`ExperimentTable` whose rows are what EXPERIMENTS.md reports.  The
benchmark suite calls the same functions (so `pytest benchmarks/` both times
them and re-produces the numbers), and the example scripts print them.

Design choices documented once here:

* **Workloads.**  ``hub`` — hub-backbone graphs of exact diameter ``D`` with
  adversarial long-path partitions; ``lower_bound`` — the Elkin/Das-Sarma
  instances with their canonical path parts; ``cluster`` — diameter-4
  cluster stars with the clusters as parts.
* **Sampling regime.**  The default ``log_factor`` is below 1 so that the
  sampling probability stays meaningfully below 1 at simulator scale (the
  paper's exact ``p`` clamps to 1 for small ``n``, collapsing the
  construction to the naive shortcut); EXPERIMENTS.md reports the factor
  used for every table.
* **Determinism.**  Every experiment takes a seed and is reproducible.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..applications.mincut import approximate_min_cut, stoer_wagner_min_cut
from ..applications.mst import boruvka_mst, default_shortcut_factory, kruskal_mst
from ..applications.sssp import bellman_ford, dijkstra, shortcut_accelerated_sssp
from ..applications.two_ecss import two_ecss_approximation
from ..applications.aggregation import estimate_aggregation_rounds
from ..graphs.generators import (
    cluster_star_graph,
    hub_diameter_graph,
    planted_cut_graph,
    with_random_weights,
)
from ..graphs.graph import Graph, WeightedGraph
from ..graphs.lower_bound import lower_bound_instance
from ..graphs.partitions import path_partition, random_connected_partition, singleton_free
from ..params import (
    elkin_lower_bound,
    ghaffari_haeupler_quality,
    k_d_value,
    predicted_congestion,
    predicted_dilation,
    predicted_quality,
    predicted_rounds_distributed,
)
from ..shortcuts.baselines import (
    build_empty_shortcut,
    build_ghaffari_haeupler_shortcut,
    build_kitamura_style_shortcut,
    build_naive_shortcut,
)
from ..shortcuts.distributed import build_distributed_kogan_parter
from ..shortcuts.kogan_parter import build_kogan_parter_shortcut
from ..shortcuts.partition import Partition
from ..shortcuts.shortcut_trees import ShortcutTree
from ..graphs.traversal import shortest_path

from ..rng import ensure_rng


# ----------------------------------------------------------------------
# result tables
# ----------------------------------------------------------------------
@dataclass
class ExperimentTable:
    """A rendered experiment result: a named table of rows.

    Attributes:
        experiment_id: identifier from DESIGN.md (e.g. ``"E1"``).
        title: human-readable description.
        headers: column names.
        rows: the data rows (values are rendered with :func:`render`).
        notes: free-form annotations (parameters used, caveats).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append a row (must match the header count)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values but the table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[object]:
        """Return one column by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                if value == float("inf"):
                    return "inf"
                return f"{value:.3g}"
            return str(value)

        str_rows = [[fmt(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(self.headers))))
        for row in str_rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
@dataclass
class Workload:
    """A graph plus a part collection, ready for shortcut construction.

    Attributes:
        name: workload family name.
        graph: the host graph.
        partition: the parts.
        diameter: the exact graph diameter.
    """

    name: str
    graph: Graph
    partition: Partition
    diameter: int


def make_workload(kind: str, n: int, diameter_value: int, *, seed: int = 0) -> Workload:
    """Build one of the named workload families.

    Args:
        kind: ``"hub"``, ``"lower_bound"`` or ``"cluster"``.
        n: approximate number of vertices.
        diameter_value: target diameter (``cluster`` always has diameter 4).
        seed: RNG seed.

    Returns:
        A :class:`Workload`.
    """
    rng = ensure_rng(seed)
    if kind == "hub":
        # A sparse layer of random chords between the non-backbone vertices
        # gives the graph enough path structure for the adversarial long-path
        # partition to exist (without the chords, almost every vertex is a
        # degree-1 leaf of a hub and no long induced path can be carved).
        extra = min(0.05, 4.0 / max(n, 1))
        graph = hub_diameter_graph(n, diameter_value, extra_edge_prob=extra, rng=rng)
        k_d = k_d_value(graph.num_vertices, diameter_value)
        path_len = max(3, int(3 * k_d))
        num_paths = max(2, int(graph.num_vertices / max(path_len, 2)))
        parts = path_partition(graph, num_paths, path_len, rng=rng)
        parts = singleton_free(parts)
        if not parts:
            parts = singleton_free(random_connected_partition(graph, num_paths, rng=rng))
        partition = Partition(graph, parts, validate=False)
        return Workload(name="hub", graph=graph, partition=partition, diameter=diameter_value)
    if kind == "lower_bound":
        inst = lower_bound_instance(n, diameter_value)
        partition = Partition(inst.graph, inst.parts, validate=False)
        return Workload(
            name="lower_bound",
            graph=inst.graph,
            partition=partition,
            diameter=inst.diameter,
        )
    if kind == "cluster":
        cluster_size = max(3, int(math.sqrt(n)))
        num_clusters = max(2, n // cluster_size)
        graph = cluster_star_graph(num_clusters, cluster_size, rng=rng)
        parts = []
        for c in range(num_clusters):
            base = 1 + c * cluster_size
            parts.append(set(range(base, base + cluster_size)))
        partition = Partition(graph, parts, validate=False)
        return Workload(name="cluster", graph=graph, partition=partition, diameter=4)
    raise ValueError(f"unknown workload kind {kind!r}")


def make_weighted_workload(
    kind: str, n: int, diameter_value: int, *, seed: int = 0
) -> tuple[WeightedGraph, int]:
    """Build a weighted graph of the named family (for the application experiments)."""
    workload = make_workload(kind, n, diameter_value, seed=seed)
    weighted = with_random_weights(workload.graph, rng=seed + 1)
    return weighted, workload.diameter


# ----------------------------------------------------------------------
# E1-E3: quality / congestion / dilation of the KP construction
# ----------------------------------------------------------------------
def run_quality_experiment(
    *,
    sizes: Sequence[int] = (200, 400, 800),
    diameters: Sequence[int] = (4, 6, 8),
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 7,
    trials: int = 1,
) -> ExperimentTable:
    """E1: measured KP shortcut quality vs. the predicted ``k_D log n`` curve."""
    table = ExperimentTable(
        experiment_id="E1",
        title="Kogan-Parter shortcut quality vs predicted k_D log n (Theorem 1.1)",
        headers=[
            "workload", "n", "D", "k_D", "congestion", "dilation", "quality",
            "predicted", "ratio",
        ],
        notes=[f"kind={kind}, log_factor={log_factor}, trials={trials}, seed={seed}"],
    )
    for diameter_value in diameters:
        for n in sizes:
            qualities, congestions, dilations = [], [], []
            for t in range(trials):
                workload = make_workload(kind, n, diameter_value, seed=seed + 101 * t)
                result = build_kogan_parter_shortcut(
                    workload.graph,
                    workload.partition,
                    diameter_value=workload.diameter,
                    log_factor=log_factor,
                    rng=seed + 13 * t,
                )
                report = result.shortcut.quality_report(exact_dilation=False)
                qualities.append(report.quality)
                congestions.append(report.congestion)
                dilations.append(report.dilation)
            n_actual = workload.graph.num_vertices
            predicted = max(1.0, log_factor * predicted_quality(n_actual, workload.diameter))
            quality = statistics.mean(qualities)
            table.add_row(
                workload.name,
                n_actual,
                workload.diameter,
                round(k_d_value(n_actual, workload.diameter), 2),
                statistics.mean(congestions),
                statistics.mean(dilations),
                quality,
                round(predicted, 2),
                round(quality / predicted, 3),
            )
    return table


def run_congestion_experiment(
    *,
    sizes: Sequence[int] = (200, 400, 800),
    diameter_value: int = 6,
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 11,
) -> ExperimentTable:
    """E2: measured edge congestion vs. the ``O(D k_D log n)`` Chernoff bound."""
    table = ExperimentTable(
        experiment_id="E2",
        title="Edge congestion of the KP construction vs O(D k_D log n) (Section 2)",
        headers=["workload", "n", "D", "congestion", "mean_load", "predicted", "ratio"],
        notes=[f"kind={kind}, log_factor={log_factor}, seed={seed}"],
    )
    for n in sizes:
        workload = make_workload(kind, n, diameter_value, seed=seed)
        result = build_kogan_parter_shortcut(
            workload.graph,
            workload.partition,
            diameter_value=workload.diameter,
            log_factor=log_factor,
            rng=seed,
        )
        loads = result.shortcut.edge_loads()
        congestion = max(loads.values(), default=0)
        mean_load = statistics.mean(loads.values()) if loads else 0.0
        n_actual = workload.graph.num_vertices
        predicted = max(1.0, log_factor * predicted_congestion(n_actual, workload.diameter))
        table.add_row(
            workload.name,
            n_actual,
            workload.diameter,
            congestion,
            round(mean_load, 2),
            round(predicted, 2),
            round(congestion / predicted, 3),
        )
    return table


def run_dilation_experiment(
    *,
    sizes: Sequence[int] = (200, 400, 800),
    diameters: Sequence[int] = (4, 6),
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 13,
) -> ExperimentTable:
    """E3: measured dilation vs. the ``O(k_D log n)`` bound (Theorem 3.1).

    The induced part diameter (the dilation with no shortcut at all) is
    reported alongside, showing how much the sampled edges shorten the parts.
    """
    table = ExperimentTable(
        experiment_id="E3",
        title="Dilation of augmented parts vs O(k_D log n) (Theorem 3.1)",
        headers=[
            "workload", "n", "D", "induced_diam", "dilation", "predicted", "ratio",
        ],
        notes=[f"kind={kind}, log_factor={log_factor}, seed={seed}"],
    )
    for diameter_value in diameters:
        for n in sizes:
            workload = make_workload(kind, n, diameter_value, seed=seed)
            empty = build_empty_shortcut(workload.graph, workload.partition)
            induced = empty.dilation(exact=False)
            result = build_kogan_parter_shortcut(
                workload.graph,
                workload.partition,
                diameter_value=workload.diameter,
                log_factor=log_factor,
                rng=seed,
            )
            dilation = result.shortcut.dilation(exact=False)
            n_actual = workload.graph.num_vertices
            predicted = max(1.0, log_factor * predicted_dilation(n_actual, workload.diameter))
            table.add_row(
                workload.name,
                n_actual,
                workload.diameter,
                induced,
                dilation,
                round(predicted, 2),
                round(dilation / predicted, 3),
            )
    return table


# ----------------------------------------------------------------------
# E4: baselines and lower bound
# ----------------------------------------------------------------------
def run_baseline_experiment(
    *,
    sizes: Sequence[int] = (200, 400),
    diameters: Sequence[int] = (4, 6, 8),
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    seed: int = 17,
) -> ExperimentTable:
    """E4: KP vs Ghaffari-Haeupler vs Kitamura-style vs naive/empty baselines.

    Also reports the Elkin lower-bound value ``k_D`` and the predicted GH
    quality ``sqrt(n) + D`` so the measured values can be placed between the
    two curves.
    """
    table = ExperimentTable(
        experiment_id="E4",
        title="Shortcut quality: KP vs baselines vs Elkin lower bound",
        headers=[
            "workload", "n", "D", "lower_bound", "kp_quality", "kitamura_quality",
            "gh_quality", "naive_quality", "empty_quality", "gh_predicted",
        ],
        notes=[f"kind={kind}, log_factor={log_factor}, seed={seed}"],
    )
    for diameter_value in diameters:
        for n in sizes:
            workload = make_workload(kind, n, diameter_value, seed=seed)
            graph, partition = workload.graph, workload.partition
            n_actual = graph.num_vertices

            kp = build_kogan_parter_shortcut(
                graph, partition, diameter_value=workload.diameter,
                log_factor=log_factor, rng=seed,
            ).shortcut.quality_report(exact_dilation=False)
            kit = build_kitamura_style_shortcut(
                graph, partition, diameter_value=workload.diameter,
                log_factor=log_factor, rng=seed,
            ).shortcut.quality_report(exact_dilation=False)
            gh = build_ghaffari_haeupler_shortcut(graph, partition).quality_report(
                exact_dilation=False
            )
            naive = build_naive_shortcut(graph, partition).quality_report(exact_dilation=False)
            empty = build_empty_shortcut(graph, partition).quality_report(exact_dilation=False)

            table.add_row(
                workload.name,
                n_actual,
                workload.diameter,
                round(elkin_lower_bound(n_actual, workload.diameter), 2),
                kp.quality,
                kit.quality,
                gh.quality,
                naive.quality,
                empty.quality,
                round(ghaffari_haeupler_quality(n_actual, workload.diameter), 2),
            )
    return table


# ----------------------------------------------------------------------
# E5: distributed construction rounds
# ----------------------------------------------------------------------
def run_distributed_experiment(
    *,
    sizes: Sequence[int] = (60, 120, 240),
    diameter_value: int = 6,
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    known_diameter: bool = True,
    seed: int = 19,
) -> ExperimentTable:
    """E5: rounds of the CONGEST shortcut construction vs ``~O(k_D)``."""
    table = ExperimentTable(
        experiment_id="E5",
        title="Distributed construction rounds vs predicted k_D log^2 n (Section 2)",
        headers=[
            "workload", "n", "D", "rounds", "bfs_rounds", "predicted", "ratio", "spanning",
        ],
        notes=[
            f"kind={kind}, log_factor={log_factor}, known_diameter={known_diameter}, seed={seed}",
            "bfs_rounds = measured rounds of the concurrent random-delay BFS stage",
        ],
    )
    for n in sizes:
        workload = make_workload(kind, n, diameter_value, seed=seed)
        result = build_distributed_kogan_parter(
            workload.graph,
            workload.partition,
            diameter_value=workload.diameter,
            known_diameter=known_diameter,
            log_factor=log_factor,
            rng=seed,
        )
        n_actual = workload.graph.num_vertices
        predicted = max(1.0, predicted_rounds_distributed(n_actual, workload.diameter))
        table.add_row(
            workload.name,
            n_actual,
            workload.diameter,
            result.total_rounds,
            result.rounds_breakdown.get("concurrent_bfs", 0),
            round(predicted, 1),
            round(result.total_rounds / predicted, 3),
            result.spanning_ok,
        )
    return table


# ----------------------------------------------------------------------
# E6: MST
# ----------------------------------------------------------------------
def run_mst_experiment(
    *,
    sizes: Sequence[int] = (100, 200, 400),
    diameter_value: int = 6,
    kind: str = "hub",
    log_factor: float = 0.25,
    seed: int = 23,
) -> ExperimentTable:
    """E6: Boruvka-over-shortcuts MST — correctness and charged rounds per engine."""
    table = ExperimentTable(
        experiment_id="E6",
        title="MST rounds with different shortcut engines (Corollary 1.2)",
        headers=[
            "workload", "n", "D", "kp_rounds", "gh_rounds", "naive_rounds",
            "phases", "weight_matches_kruskal",
        ],
        notes=[f"kind={kind}, log_factor={log_factor}, seed={seed}"],
    )
    for n in sizes:
        weighted, diameter_actual = make_weighted_workload(kind, n, diameter_value, seed=seed)
        _, kruskal_weight = kruskal_mst(weighted)

        kp_factory = default_shortcut_factory(
            diameter_value=diameter_actual, log_factor=log_factor, rng=seed
        )
        kp = boruvka_mst(weighted, shortcut_factory=kp_factory)

        def gh_factory(graph, partition):
            shortcut = build_ghaffari_haeupler_shortcut(graph, partition)
            quality = shortcut.quality_report(exact_dilation=False)
            return shortcut, estimate_aggregation_rounds(quality, graph.num_vertices)

        gh = boruvka_mst(weighted, shortcut_factory=gh_factory)

        def naive_factory(graph, partition):
            shortcut = build_naive_shortcut(graph, partition)
            quality = shortcut.quality_report(exact_dilation=False)
            return shortcut, estimate_aggregation_rounds(quality, graph.num_vertices)

        naive = boruvka_mst(weighted, shortcut_factory=naive_factory)

        matches = (
            abs(kp.weight - kruskal_weight) < 1e-6
            and abs(gh.weight - kruskal_weight) < 1e-6
            and abs(naive.weight - kruskal_weight) < 1e-6
        )
        table.add_row(
            kind,
            weighted.num_vertices,
            diameter_actual,
            kp.total_rounds,
            gh.total_rounds,
            naive.total_rounds,
            kp.phases,
            matches,
        )
    return table


# ----------------------------------------------------------------------
# E7: approximate min-cut
# ----------------------------------------------------------------------
def run_mincut_experiment(
    *,
    half_sizes: Sequence[int] = (30, 50),
    cut_edges: Sequence[int] = (3, 6),
    seed: int = 29,
    log_factor: float = 0.25,
) -> ExperimentTable:
    """E7: approximate min-cut value and rounds on planted-cut instances."""
    table = ExperimentTable(
        experiment_id="E7",
        title="Approximate min-cut vs exact (Corollary 1.2)",
        headers=[
            "n", "planted_cut", "exact", "approx", "ratio", "trees", "rounds",
        ],
        notes=[f"seed={seed}, log_factor={log_factor}"],
    )
    for half in half_sizes:
        for k in cut_edges:
            graph = planted_cut_graph(half, k, rng=seed)
            exact_value, _ = stoer_wagner_min_cut(graph)
            factory = default_shortcut_factory(log_factor=log_factor, rng=seed)
            approx = approximate_min_cut(
                graph, epsilon=0.5, num_trees=4, shortcut_factory=factory, rng=seed
            )
            ratio = approx.value / exact_value if exact_value else float("inf")
            table.add_row(
                graph.num_vertices,
                k,
                exact_value,
                approx.value,
                round(ratio, 3),
                approx.num_trees,
                approx.total_rounds,
            )
    return table


# ----------------------------------------------------------------------
# E8: SSSP and 2-ECSS
# ----------------------------------------------------------------------
def run_applications_experiment(
    *,
    sizes: Sequence[int] = (100, 200),
    diameter_value: int = 6,
    kind: str = "hub",
    log_factor: float = 0.25,
    seed: int = 31,
) -> ExperimentTable:
    """E8: SSSP stretch/rounds and 2-ECSS weight/rounds over KP shortcuts."""
    table = ExperimentTable(
        experiment_id="E8",
        title="Shortcut-driven SSSP and 2-ECSS (Corollaries 4.2, 4.3)",
        headers=[
            "n", "D", "sssp_stretch", "sssp_phases", "sssp_rounds",
            "bf_baseline_stretch", "ecss_weight_ratio", "ecss_2ec", "ecss_rounds",
        ],
        notes=[
            f"kind={kind}, log_factor={log_factor}, seed={seed}",
            "bf_baseline_stretch = stretch of plain Bellman-Ford run for the same number of phases",
            "ecss_weight_ratio = 2-ECSS weight / MST weight (MST is a lower bound on OPT)",
        ],
    )
    for n in sizes:
        workload = make_workload(kind, n, diameter_value, seed=seed)
        weighted = with_random_weights(workload.graph, rng=seed + 1)
        partition = workload.partition
        kp = build_kogan_parter_shortcut(
            weighted, partition, diameter_value=workload.diameter,
            log_factor=log_factor, rng=seed,
        ).shortcut

        source = 0
        sssp = shortcut_accelerated_sssp(weighted, source, kp, max_phases=8)
        baseline = bellman_ford(weighted, source, max_hops=sssp.phases)
        exact = dijkstra(weighted, source)
        bf_stretch = 1.0
        for v, d_exact in exact.items():
            if d_exact == 0:
                continue
            d_apx = baseline.get(v, float("inf"))
            bf_stretch = max(bf_stretch, d_apx / d_exact if d_apx != float("inf") else float("inf"))

        # The 2-ECSS experiment needs a 2-edge-connected input (bridges of the
        # input can never be covered); the planted-cut family is
        # 2-edge-connected by construction whenever it has >= 2 crossing edges.
        ecss_graph = planted_cut_graph(max(10, n // 2), 4, rng=seed)
        factory = default_shortcut_factory(log_factor=log_factor, rng=seed)
        ecss = two_ecss_approximation(ecss_graph, shortcut_factory=factory)
        weight_ratio = ecss.weight / ecss.mst_weight if ecss.mst_weight else float("inf")

        table.add_row(
            weighted.num_vertices,
            workload.diameter,
            round(sssp.max_stretch, 3),
            sssp.phases,
            sssp.total_rounds,
            round(bf_stretch, 3) if bf_stretch != float("inf") else float("inf"),
            round(weight_ratio, 3),
            ecss.is_two_edge_connected,
            ecss.total_rounds,
        )
    return table


# ----------------------------------------------------------------------
# E9: shortcut trees / Lemma 3.3
# ----------------------------------------------------------------------
def run_shortcut_tree_experiment(
    *,
    sizes: Sequence[int] = (200, 400),
    diameter_value: int = 6,
    path_length: int = 12,
    trials: int = 20,
    probabilities: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.8),
    seed: int = 37,
) -> ExperimentTable:
    """E9: empirical (i, k)-walk reach in sampled shortcut trees (Lemma 3.3).

    For each instance a shortest path ``P`` inside one part and a target set
    ``Q`` (the connector core) define the auxiliary tree; the table sweeps
    the non-self-edge sampling probability and reports how often the start
    of the path reaches the path end or the top layer within the lemma's
    length budget, plus the mean distance to the top layer.  The lemma's
    threshold probability ``~k_D / N`` should show up as the point where the
    success rate saturates.
    """
    table = ExperimentTable(
        experiment_id="E9",
        title="Shortcut trees: empirical success of Lemma 3.3 walk bounds",
        headers=[
            "n", "D", "ell", "sampling_p", "lemma_p", "success_rate",
            "mean_top_layer_dist", "budget",
        ],
        notes=[f"trials={trials}, seed={seed}"],
    )
    for n in sizes:
        inst = lower_bound_instance(n, diameter_value)
        graph = inst.graph
        part = sorted(inst.parts[0])
        endpoints = (part[0], part[min(path_length, len(part) - 1)])
        path = shortest_path(graph, endpoints[0], endpoints[1])
        if path is None or len(path) < 3:
            continue
        ell = diameter_value // 2
        q_nodes = set(list(inst.tree_vertices)[: max(2, len(inst.tree_vertices) // 4)])
        tree = ShortcutTree(graph, path, q_nodes, ell=ell)
        n_actual = graph.num_vertices
        k_d = k_d_value(n_actual, diameter_value)
        lemma_p = min(1.0, k_d / max(n_actual / k_d, 1.0))
        budget = max(4.0, 4.0 * k_d * math.log(max(n_actual, 2)))
        top_layer = ell + 1
        for sampling_p in probabilities:
            successes = 0
            top_distances = []
            rng = ensure_rng(seed)
            for _ in range(trials):
                analysis = tree.analyze(
                    probability=sampling_p, rng=rng, diameter_value=diameter_value
                )
                reach = min(
                    [analysis.distance_to_end]
                    + list(analysis.distance_to_layer.values())
                )
                top = analysis.distance_to_layer.get(top_layer, float("inf"))
                top_distances.append(min(top, 10 * budget))
                if reach <= budget:
                    successes += 1
            table.add_row(
                n_actual,
                diameter_value,
                ell,
                round(sampling_p, 3),
                round(lemma_p, 3),
                round(successes / trials, 3),
                round(statistics.mean(top_distances), 2),
                round(budget, 1),
            )
    return table


#: All experiment runners, keyed by experiment id (used by the CLI example
#: and the benchmark suite).
EXPERIMENT_RUNNERS: dict[str, Callable[..., ExperimentTable]] = {
    "E1": run_quality_experiment,
    "E2": run_congestion_experiment,
    "E3": run_dilation_experiment,
    "E4": run_baseline_experiment,
    "E5": run_distributed_experiment,
    "E6": run_mst_experiment,
    "E7": run_mincut_experiment,
    "E8": run_applications_experiment,
    "E9": run_shortcut_tree_experiment,
}


def run_all_experiments(*, fast: bool = True, seed: int = 1) -> list[ExperimentTable]:
    """Run every experiment with (optionally reduced) default parameters.

    Args:
        fast: use the smaller parameter sets intended for CI / quick runs.
        seed: base RNG seed.

    Returns:
        One :class:`ExperimentTable` per experiment, in id order.
    """
    if fast:
        overrides: dict[str, dict[str, object]] = {
            "E1": {"sizes": (150, 300), "diameters": (4, 6), "seed": seed},
            "E2": {"sizes": (150, 300), "seed": seed},
            "E3": {"sizes": (150, 300), "diameters": (4, 6), "seed": seed},
            "E4": {"sizes": (150, 300), "diameters": (4, 6), "seed": seed},
            "E5": {"sizes": (60, 120), "seed": seed},
            "E6": {"sizes": (80, 160), "seed": seed},
            "E7": {"half_sizes": (20,), "cut_edges": (3,), "seed": seed},
            "E8": {"sizes": (80,), "seed": seed},
            "E9": {"sizes": (150,), "trials": 10, "seed": seed},
            "E10": {"sizes": (80,), "seed": seed},
            "E11": {"n": 200, "seed": seed},
            "E12": {"n": 200, "seed": seed},
            "E13": {"sizes": (400,), "seed": seed},
            "E14": {"part_sizes": (30, 60), "seed": seed},
        }
    else:
        overrides = {key: {} for key in EXPERIMENT_RUNNERS}
    tables = []
    for key in sorted(EXPERIMENT_RUNNERS):
        runner = EXPERIMENT_RUNNERS[key]
        tables.append(runner(**overrides.get(key, {})))
    return tables


# ----------------------------------------------------------------------
# E10-E12: ablations
# ----------------------------------------------------------------------
def run_distributed_mst_experiment(
    *,
    sizes: Sequence[int] = (80, 140),
    diameter_value: int = 6,
    log_factor: float = 0.3,
    seed: int = 41,
) -> ExperimentTable:
    """E10: simulated distributed Boruvka — shortcut-augmented vs induced-only trees.

    The MWOE stage of every Boruvka phase runs on the CONGEST simulator; the
    table compares the maximum per-phase simulated rounds when the fragment
    trees are grown over Kogan-Parter augmented subgraphs against the
    no-shortcut baseline, on lower-bound instances whose fragments become
    long paths.
    """
    from ..applications.distributed_mst import distributed_boruvka_mst
    from ..graphs.generators import with_random_weights

    table = ExperimentTable(
        experiment_id="E10",
        title="Simulated distributed MST: shortcut vs induced-only fragment trees",
        headers=[
            "n", "D", "weight_ok", "phases",
            "max_phase_rounds_shortcut", "max_phase_rounds_induced",
            "total_rounds_shortcut", "total_rounds_induced",
        ],
        notes=[f"log_factor={log_factor}, seed={seed}; rounds columns are the simulated MWOE stages"],
    )
    for n in sizes:
        inst = lower_bound_instance(n, diameter_value)
        weighted = with_random_weights(inst.graph, rng=seed)
        with_sc = distributed_boruvka_mst(
            weighted, use_shortcuts=True, diameter_value=diameter_value,
            log_factor=log_factor, rng=seed + 1,
        )
        without_sc = distributed_boruvka_mst(weighted, use_shortcuts=False, rng=seed + 2)
        _, kruskal_weight = kruskal_mst(weighted)
        weight_ok = (
            abs(with_sc.weight - kruskal_weight) < 1e-6
            and abs(without_sc.weight - kruskal_weight) < 1e-6
        )
        table.add_row(
            inst.graph.num_vertices,
            diameter_value,
            weight_ok,
            with_sc.phases,
            max(with_sc.simulated_rounds_per_phase, default=0),
            max(without_sc.simulated_rounds_per_phase, default=0),
            sum(with_sc.simulated_rounds_per_phase),
            sum(without_sc.simulated_rounds_per_phase),
        )
    return table


def run_repetition_ablation(
    *,
    n: int = 400,
    diameter_value: int = 6,
    repetition_choices: Sequence[int] = (1, 2, 3, 6, 12),
    log_factor: float = 0.25,
    trials: int = 5,
    seed: int = 43,
) -> ExperimentTable:
    """E11: ablation of the number of sampling repetitions (Step 3).

    The paper repeats the edge sampling D times; the recursion of the
    dilation argument consumes one repetition per level.  The ablation
    varies the repetition count while keeping the per-repetition probability
    fixed and reports the resulting congestion / dilation trade-off,
    averaged over ``trials`` independent samplings (a single sampling is
    noisy because the dilation is a maximum over parts).
    """
    table = ExperimentTable(
        experiment_id="E11",
        title="Ablation: number of sampling repetitions vs congestion and dilation",
        headers=["n", "D", "repetitions", "congestion", "dilation", "quality"],
        notes=[f"log_factor={log_factor}, trials={trials}, seed={seed}, workload=lower_bound"],
    )
    inst = lower_bound_instance(n, diameter_value)
    partition = Partition(inst.graph, inst.parts, validate=False)
    for reps in repetition_choices:
        congestions, dilations = [], []
        for t in range(trials):
            result = build_kogan_parter_shortcut(
                inst.graph,
                partition,
                diameter_value=diameter_value,
                repetitions=reps,
                log_factor=log_factor,
                rng=seed + 101 * t,
            )
            report = result.shortcut.quality_report(exact_dilation=False)
            congestions.append(report.congestion)
            dilations.append(report.dilation)
        congestion = statistics.mean(congestions)
        dilation = statistics.mean(dilations)
        table.add_row(
            inst.graph.num_vertices,
            diameter_value,
            reps,
            round(congestion, 2),
            round(dilation, 2),
            round(congestion + dilation, 2),
        )
    return table


def run_probability_ablation(
    *,
    n: int = 400,
    diameter_value: int = 6,
    log_factors: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 1.0),
    seed: int = 47,
) -> ExperimentTable:
    """E12: ablation of the sampling probability (via the log_factor knob).

    Larger probabilities lower the dilation and raise the congestion; the
    paper's choice p = k_D log n / N balances the two at ~k_D log n each.
    The table reports the measured trade-off, including the degenerate
    clamped regime (probability 1) where the construction coincides with the
    naive shortcut.
    """
    table = ExperimentTable(
        experiment_id="E12",
        title="Ablation: sampling probability vs congestion/dilation trade-off",
        headers=["n", "D", "log_factor", "probability", "congestion", "dilation", "quality"],
        notes=[f"seed={seed}, workload=lower_bound"],
    )
    inst = lower_bound_instance(n, diameter_value)
    partition = Partition(inst.graph, inst.parts, validate=False)
    for factor in log_factors:
        result = build_kogan_parter_shortcut(
            inst.graph,
            partition,
            diameter_value=diameter_value,
            log_factor=factor,
            rng=seed,
        )
        report = result.shortcut.quality_report(exact_dilation=False)
        table.add_row(
            inst.graph.num_vertices,
            diameter_value,
            factor,
            round(result.parameters.probability, 4),
            report.congestion,
            report.dilation,
            report.quality,
        )
    return table


# ----------------------------------------------------------------------
# E13: distributed construction at scale
# ----------------------------------------------------------------------
def run_distributed_scale_experiment(
    *,
    sizes: Sequence[int] = (1_000, 3_000, 10_000),
    diameter_value: int = 6,
    kind: str = "lower_bound",
    log_factor: float = 0.25,
    known_diameter: bool = False,
    seed: int = 53,
) -> ExperimentTable:
    """E13: the fully simulated distributed construction at 10k-node scale.

    Sweeps the CSR-mask pipeline (every stage of ``rounds_breakdown``
    measured, unknown-diameter guessing by default) over instance sizes the
    dict-of-sets driver could not reach interactively, reporting rounds,
    guesses, message volume of the round-dominant stage and wall time.
    """
    import time

    table = ExperimentTable(
        experiment_id="E13",
        title="Distributed construction at scale (fully simulated CSR-mask pipeline)",
        headers=[
            "workload", "n", "m", "D_guess", "guesses", "probe_rounds",
            "rounds", "bfs_rounds", "bfs_messages", "wall_s", "spanning",
        ],
        notes=[
            f"kind={kind}, log_factor={log_factor}, known_diameter={known_diameter}, seed={seed}",
            "all rounds_breakdown stages are simulated; guesses = attempted diameter guesses "
            "(geometric doubling from the measured BFS 2-approximation)",
        ],
    )
    for n in sizes:
        workload = make_workload(kind, n, diameter_value, seed=seed)
        start = time.perf_counter()
        result = build_distributed_kogan_parter(
            workload.graph,
            workload.partition,
            diameter_value=None if not known_diameter else workload.diameter,
            known_diameter=known_diameter,
            log_factor=log_factor,
            rng=seed,
        )
        wall = time.perf_counter() - start
        bfs = result.bfs_metrics
        table.add_row(
            workload.name,
            workload.graph.num_vertices,
            workload.graph.num_edges,
            result.accepted_guess,
            len(result.attempted_guesses),
            result.probe_rounds,
            result.total_rounds,
            result.rounds_breakdown.get("concurrent_bfs", 0),
            bfs.messages_delivered if bfs is not None else 0,
            round(wall, 3),
            result.spanning_ok,
        )
    return table


# ----------------------------------------------------------------------
# E14: shortcut-routed vs raw part-tree aggregation
# ----------------------------------------------------------------------
def run_aggregation_routing_experiment(
    *,
    part_sizes: Sequence[int] = (40, 80, 160),
    families: Sequence[str] = ("broom", "caterpillar", "lower_bound"),
    log_factor: float = 1.0,
    seed: int = 59,
) -> ExperimentTable:
    """E14: rounds of one part-wise aggregation, shortcut-routed vs raw trees.

    The quantity Theorem 1.1 is *for*: the same part-wise min aggregation
    (the MWOE/hooking step of every consumer phase) is executed twice on
    the CONGEST simulator — once over Kogan-Parter augmented part trees,
    once over the bare induced part trees — and the measured two-stage
    rounds are compared.  Workloads are the worst-case long-path parts: a
    broom handle and a caterpillar spine embedded in a constant-diameter
    hub host, and the Elkin/Das-Sarma lower-bound instance with its
    canonical path parts.
    """
    from ..congest.primitives.aggregation import aggregate_over_shortcut
    from ..graphs.generators import broom_graph, caterpillar_graph

    table = ExperimentTable(
        experiment_id="E14",
        title="Part-wise aggregation rounds: shortcut-routed vs raw part trees",
        headers=[
            "family", "n", "part_size", "D", "rounds_shortcut", "rounds_raw",
            "speedup", "values_equal",
        ],
        notes=[
            f"log_factor={log_factor}, seed={seed}; rounds are the measured "
            "two-stage fleet (concurrent masked BFS + PartAggregation "
            "convergecast/broadcast), op=min over node ids",
        ],
    )
    for family in families:
        for size in part_sizes:
            if family == "broom":
                graph = broom_graph(size, max(1, size // 2), hub=True)
                parts = [set(range(size))]
                diameter_value = 4
            elif family == "caterpillar":
                graph = caterpillar_graph(size, 1, hub=True)
                parts = [set(range(size))]
                diameter_value = 4
            elif family == "lower_bound":
                inst = lower_bound_instance(size * 5, 6)
                graph = inst.graph
                parts = inst.parts
                diameter_value = inst.diameter
            else:
                raise ValueError(f"unknown E14 family {family!r}")
            partition = Partition(graph, parts, validate=False)
            shortcut = build_kogan_parter_shortcut(
                graph, partition, diameter_value=diameter_value,
                log_factor=log_factor, rng=seed,
            ).shortcut
            raw = build_empty_shortcut(graph, partition)
            values = {v: v for v in partition.covered_vertices()}
            routed = aggregate_over_shortcut(shortcut, values, "min", rng=seed + 1)
            bare = aggregate_over_shortcut(raw, values, "min", rng=seed + 1)
            table.add_row(
                family,
                graph.num_vertices,
                max(len(p) for p in parts),
                diameter_value,
                routed.rounds,
                bare.rounds,
                round(bare.rounds / max(routed.rounds, 1), 2),
                routed.values == bare.values,
            )
    return table


EXPERIMENT_RUNNERS["E10"] = run_distributed_mst_experiment
EXPERIMENT_RUNNERS["E11"] = run_repetition_ablation
EXPERIMENT_RUNNERS["E12"] = run_probability_ablation
EXPERIMENT_RUNNERS["E14"] = run_aggregation_routing_experiment
EXPERIMENT_RUNNERS["E13"] = run_distributed_scale_experiment
