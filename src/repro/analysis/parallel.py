"""Deterministic parallel execution of experiment cells.

The experiment harness decomposes every sweep into *cells* — pure,
picklable tasks (one workload construction + measurement, typically one
``(size, trial)`` point of a table) identified by an experiment id and a
kwargs dict.  This module shards those cells across a
``concurrent.futures.ProcessPoolExecutor`` and merges the results back in
submission order.

The contract the test-suite pins: because every cell derives its own RNG
stream from its parameters (:func:`repro.rng.derive_seed`) and the merge
preserves cell order, the assembled tables are **bit-identical** for every
worker count, including the serial path.  Parallelism changes wall time
only, never a value.

Workers execute cells by looking the experiment's cell runner up in
:data:`repro.analysis.experiments.CELL_RUNNERS`, so only the small kwargs
dicts cross the process boundary — graphs are regenerated inside the
worker from their derived seeds, which is cheap at experiment scale and
keeps dispatch chunks tiny.

When no process pool can be created (sandboxes without fork/spawn, missing
``/dev/shm``), execution falls back to the serial path with a warning —
the results are identical by construction.
"""

from __future__ import annotations

import math
import os
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class CellTask:
    """One schedulable unit of an experiment sweep.

    Attributes:
        experiment_id: key into ``CELL_RUNNERS`` (e.g. ``"E1"``).
        kwargs: keyword arguments for the cell runner.  Must be picklable
            and fully determine the cell, including its derived seeds.
    """

    experiment_id: str
    kwargs: dict

    def run(self) -> object:
        """Execute this cell in the current process."""
        # Imported lazily: experiments.py imports this module at load time,
        # and worker processes only need the registry once they run a cell.
        from .experiments import CELL_RUNNERS

        return CELL_RUNNERS[self.experiment_id](**self.kwargs)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count argument.

    ``None``, ``0`` and ``1`` mean serial; a negative count means "all
    cores"; anything else is used as given.
    """
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return workers


def default_chunksize(num_cells: int, workers: int) -> int:
    """Chunk cells so each worker receives a handful of batches.

    Four batches per worker balances dispatch overhead against load skew
    from uneven cell costs (an E13 construction is orders of magnitude
    slower than an E12 row).
    """
    return max(1, math.ceil(num_cells / (4 * workers)))


def _run_task(task: CellTask) -> object:
    return task.run()


def _pool_probe() -> bool:
    """No-op worker task used to prove the pool can actually spawn."""
    return True


def run_cells(
    tasks: Sequence[CellTask],
    *,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> list[object]:
    """Run cells, in parallel when asked, returning results in task order.

    Args:
        tasks: the cells to execute.
        workers: worker processes (see :func:`resolve_workers`); serial
            when it resolves to 1.
        chunksize: cells per dispatched batch (default
            :func:`default_chunksize`).

    Returns:
        One result per task, ordered exactly like ``tasks`` — the property
        the deterministic reducers rely on.
    """
    tasks = list(tasks)
    workers = resolve_workers(workers)
    if workers <= 1 or len(tasks) <= 1:
        return [task.run() for task in tasks]
    if chunksize is None:
        chunksize = default_chunksize(len(tasks), workers)
    # Prove the pool can spawn with a no-op probe before dispatching real
    # work: ProcessPoolExecutor forks lazily, so a sandbox that cannot
    # spawn processes only fails on first use.  Keeping the probe — and
    # only the probe — inside the try means an OSError raised *by a cell*
    # (disk full, OOM during workload generation) propagates to the caller
    # instead of being misread as "no pool" and triggering a pointless
    # serial re-run of the whole sweep.
    pool = None
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
        pool.submit(_pool_probe).result()
    except (OSError, NotImplementedError, BrokenExecutor) as exc:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        warnings.warn(
            f"process pool unavailable ({exc!r}); running {len(tasks)} cells serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return [task.run() for task in tasks]
    with pool:
        return list(pool.map(_run_task, tasks, chunksize=chunksize))
