"""Closed-form bound curves and ratio utilities for the experiments.

The paper's statements are asymptotic; at simulator scale the experiments
check them through *normalized ratios*: a measured quantity divided by the
predicted expression should stay bounded (and roughly flat) across a
geometric sweep of ``n``.  This module provides the predicted curves (thin
wrappers over :mod:`repro.params`) and small helpers for computing and
summarising those ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..params import (
    elkin_lower_bound,
    ghaffari_haeupler_quality,
    k_d_value,
    predicted_congestion,
    predicted_dilation,
    predicted_quality,
    predicted_rounds_distributed,
)

__all__ = [
    "elkin_lower_bound",
    "ghaffari_haeupler_quality",
    "k_d_value",
    "predicted_congestion",
    "predicted_dilation",
    "predicted_quality",
    "predicted_rounds_distributed",
    "normalized_ratio",
    "RatioSummary",
    "summarize_ratios",
    "geometric_sizes",
    "crossover_size",
]


def normalized_ratio(measured: float, predicted: float) -> float:
    """Return ``measured / predicted`` (``inf`` if the prediction is zero)."""
    if predicted == 0:
        return float("inf")
    return measured / predicted


@dataclass(frozen=True)
class RatioSummary:
    """Summary statistics of a sequence of normalized ratios.

    Attributes:
        minimum, maximum, mean: the obvious statistics.
        drift: ``last / first`` — values near 1 indicate the measured
            quantity scales like the predicted curve over the sweep, values
            well above 1 indicate the measurement grows faster than
            predicted.
    """

    minimum: float
    maximum: float
    mean: float
    drift: float


def summarize_ratios(ratios: Sequence[float]) -> RatioSummary:
    """Summarise a sequence of normalized ratios (must be non-empty)."""
    if not ratios:
        raise ValueError("need at least one ratio")
    first, last = ratios[0], ratios[-1]
    return RatioSummary(
        minimum=min(ratios),
        maximum=max(ratios),
        mean=sum(ratios) / len(ratios),
        drift=last / first if first else float("inf"),
    )


def geometric_sizes(start: int, factor: float, count: int) -> list[int]:
    """Return ``count`` sizes growing geometrically from ``start``."""
    if start < 1 or factor <= 1.0 or count < 1:
        raise ValueError("need start >= 1, factor > 1 and count >= 1")
    sizes = []
    value = float(start)
    for _ in range(count):
        sizes.append(int(round(value)))
        value *= factor
    return sizes


def crossover_size(diameter: int, *, log_factor: float = 1.0) -> float:
    """Return the ``n`` where the KP quality curve crosses below the GH curve.

    Solves ``k_D(n) * log_factor * ln(n) = sqrt(n)`` numerically; for
    ``D >= 5`` this crossover exists and moves to larger ``n`` as the log
    factor grows — the experiments report predicted crossovers alongside the
    measured small-``n`` values so the asymptotic claim is auditable even
    though the crossover itself lies beyond simulator scale.
    """
    if diameter < 3:
        return 1.0

    def gap(n: float) -> float:
        return k_d_value(int(n), diameter) * log_factor * math.log(n) - math.sqrt(n)

    low, high = 4.0, 4.0
    while gap(high) > 0 and high < 1e30:
        high *= 2.0
    if high >= 1e30:
        return float("inf")
    for _ in range(200):
        mid = (low + high) / 2
        if gap(mid) > 0:
            low = mid
        else:
            high = mid
    return high
